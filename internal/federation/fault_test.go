package federation_test

// Chaos and error-path tests for the fault-tolerance layer: retries with
// backoff, per-worker circuit breakers, and quorum-based degraded
// aggregation. They live in an external test package so they can drive the
// federation through the faultinject wrapper (which imports federation).

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/federation/faultinject"
	"mip/internal/smpc"
)

var sideEffectRuns atomic.Int64

func init() {
	// A step with an observable side effect, for replay-dedupe tests.
	federation.RegisterLocal("test_sideeffect", func(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
		sideEffectRuns.Add(1)
		return federation.Transfer{"n": float64(data.NumRows())}, nil
	})
}

// noSleep makes retry backoff instantaneous in tests.
func noSleep(time.Duration) {}

// fastRetry is a 3-attempt policy with no real sleeping.
var fastRetry = federation.RetryPolicy{MaxAttempts: 3, Sleep: noSleep}

// chaosWorker builds one in-process worker with `rows` rows of dataset.
func chaosWorker(t *testing.T, id, dataset string, rows int, opts ...federation.WorkerOption) *federation.Worker {
	t.Helper()
	db := engine.NewDB()
	tab := engine.NewTable(engine.Schema{
		{Name: "dataset", Type: engine.String},
		{Name: "age", Type: engine.Float64},
	})
	for i := 0; i < rows; i++ {
		if err := tab.AppendRow(dataset, 50+float64(i%40)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable(federation.DataTable, tab)
	return federation.NewWorker(id, db, opts...)
}

// breakerOff disables the background probe loop so tests drive recovery
// deterministically through ProbeNow.
var breakerOff = federation.BreakerConfig{ProbeInterval: -1}

// TestRetrySurvivesFlakyWorker is the headline chaos scenario: an
// experiment over 4 workers succeeds — with a full, non-degraded result —
// even though one worker fails 2 of 3 delivery attempts, because the retry
// layer replays the idempotent /localrun.
func TestRetrySurvivesFlakyWorker(t *testing.T) {
	var clients []federation.WorkerClient
	var flaky *faultinject.Client
	for i := 0; i < 4; i++ {
		w := chaosWorker(t, fmt.Sprintf("site%d", i), "edsd", 20+i)
		if i == 1 {
			flaky = faultinject.Wrap(w)
			flaky.FailN("LocalRun", 2)
			clients = append(clients, federation.WithRetry(flaky, fastRetry))
		} else {
			clients = append(clients, w)
		}
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{}, federation.WithBreaker(breakerOff))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess, err := m.NewSession([]string{"edsd"})
	if err != nil {
		t.Fatal(err)
	}
	total, err := sess.Sum(federation.LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
	if err != nil {
		t.Fatalf("Sum with flaky worker: %v", err)
	}
	n, err := total.Float("n")
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(20 + 21 + 22 + 23); n != want {
		t.Fatalf("n = %v, want %v (full quorum, no degradation)", n, want)
	}
	if d := sess.Dropped(); len(d) != 0 {
		t.Fatalf("dropped = %v, want none", d)
	}
	if got := flaky.Calls("LocalRun"); got != 3 {
		t.Fatalf("flaky worker saw %d LocalRun attempts, want 3 (2 failures + 1 success)", got)
	}
}

// TestDeadWorkerPartialAggregate: a permanently dead worker under a
// MinWorkers quorum produces a partial aggregate that names the dropped
// worker in the session metadata.
func TestDeadWorkerPartialAggregate(t *testing.T) {
	var clients []federation.WorkerClient
	var dead *faultinject.Client
	for i := 0; i < 4; i++ {
		w := chaosWorker(t, fmt.Sprintf("site%d", i), "edsd", 10*(i+1))
		if i == 2 {
			dead = faultinject.Wrap(w)
			dead.SetDown()
			clients = append(clients, dead)
		} else {
			clients = append(clients, w)
		}
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{},
		federation.WithBreaker(breakerOff),
		federation.WithTolerance(federation.Tolerance{MinWorkers: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// The dead worker failed its availability scan, so scope the session to
	// all workers explicitly (nil datasets = every worker) to prove the
	// step-level drop, not just the availability-level skip.
	sess, err := m.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sess.NumWorkers() != 4 {
		t.Fatalf("session workers = %d, want 4", sess.NumWorkers())
	}
	total, err := sess.Sum(federation.LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
	if err != nil {
		t.Fatalf("Sum with dead worker under quorum: %v", err)
	}
	n, _ := total.Float("n")
	if want := float64(10 + 20 + 40); n != want {
		t.Fatalf("partial n = %v, want %v (sites 0,1,3)", n, want)
	}
	d := sess.Dropped()
	if len(d) != 1 || d[0] != "site2" {
		t.Fatalf("dropped = %v, want [site2]", d)
	}
}

// TestQuorumNotMet: losing more workers than the tolerance allows fails
// the step with a quorum error.
func TestQuorumNotMet(t *testing.T) {
	var clients []federation.WorkerClient
	for i := 0; i < 3; i++ {
		w := chaosWorker(t, fmt.Sprintf("site%d", i), "edsd", 10)
		if i > 0 {
			fi := faultinject.Wrap(w)
			fi.SetDown()
			clients = append(clients, fi)
		} else {
			clients = append(clients, w)
		}
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{},
		federation.WithBreaker(breakerOff),
		federation.WithTolerance(federation.Tolerance{MinWorkers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess, err := m.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Sum(federation.LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
	if err == nil || !strings.Contains(err.Error(), "quorum not met") {
		t.Fatalf("err = %v, want quorum-not-met", err)
	}
	if !strings.Contains(err.Error(), "1 of 3 workers responded, need 2") {
		t.Fatalf("err = %v, want counts in message", err)
	}
}

// TestSecureAggregationNeverDegrades: the SMPC path requires every
// worker's shares, so even a generous tolerance cannot produce a partial
// secure sum — the error says so explicitly.
func TestSecureAggregationNeverDegrades(t *testing.T) {
	cluster, err := smpc.NewCluster(smpc.Config{Scheme: smpc.FullThreshold, Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var clients []federation.WorkerClient
	for i := 0; i < 3; i++ {
		w := chaosWorker(t, fmt.Sprintf("site%d", i), "edsd", 20, federation.WithSMPC(cluster))
		if i == 1 {
			fi := faultinject.Wrap(w)
			fi.SetDown()
			clients = append(clients, fi)
		} else {
			clients = append(clients, w)
		}
	}
	m, err := federation.NewMaster(clients, cluster, federation.Security{UseSMPC: true},
		federation.WithBreaker(breakerOff),
		federation.WithTolerance(federation.Tolerance{MinWorkers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess, err := m.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.SecureSum(federation.LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
	if err == nil || !strings.Contains(err.Error(), "secure aggregation requires shares from all 3 workers") {
		t.Fatalf("err = %v, want all-shares-required", err)
	}
}

// TestCircuitBreakerLifecycle: consecutive failures open the circuit,
// open circuits are skipped without a call, and a half-open probe after
// the cooldown readmits a recovered worker.
func TestCircuitBreakerLifecycle(t *testing.T) {
	good := chaosWorker(t, "good", "edsd", 10)
	flap := faultinject.Wrap(chaosWorker(t, "flap", "edsd", 10))
	m, err := federation.NewMaster(
		[]federation.WorkerClient{good, flap}, nil, federation.Security{},
		federation.WithBreaker(federation.BreakerConfig{
			FailureThreshold: 2, Cooldown: time.Millisecond, ProbeInterval: -1,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if st := m.WorkerState("flap"); st != "closed" {
		t.Fatalf("initial state = %q, want closed", st)
	}

	flap.SetDown()
	for i := 0; i < 2; i++ {
		_ = m.RefreshAvailability() // live worker keeps the scan non-fatal
	}
	if st := m.WorkerState("flap"); st != "open" {
		t.Fatalf("state after 2 failures = %q, want open", st)
	}
	if av := m.Availability(); len(av["edsd"]) != 1 {
		t.Fatalf("availability with open circuit = %v, want only good", av)
	}

	// While open (within cooldown the breaker may flip to half-open and
	// admit exactly one probe), further scans cannot hammer the worker.
	calls := flap.Calls("Datasets")
	_ = m.RefreshAvailability()
	if got := flap.Calls("Datasets"); got > calls+1 {
		t.Fatalf("open circuit admitted %d calls in one scan", got-calls)
	}

	// Recovery: worker comes back, cooldown passes, probe closes the circuit.
	flap.SetUp()
	time.Sleep(5 * time.Millisecond)
	m.ProbeNow()
	if st := m.WorkerState("flap"); st != "closed" {
		t.Fatalf("state after recovery probe = %q, want closed", st)
	}
	if av := m.Availability(); len(av["edsd"]) != 2 {
		t.Fatalf("availability after recovery = %v, want both workers", av)
	}
	states := m.WorkerStates()
	if states["flap"].State != "closed" || states["good"].ConsecutiveFailures != 0 {
		t.Fatalf("WorkerStates = %+v", states)
	}
}

// TestNewMasterSurvivesDeadWorker: construction no longer fails when a
// worker is unreachable; the worker is simply absent from availability.
func TestNewMasterSurvivesDeadWorker(t *testing.T) {
	good := chaosWorker(t, "good", "edsd", 10)
	dead := faultinject.Wrap(chaosWorker(t, "dead", "ppmi", 10))
	dead.SetDown()
	m, err := federation.NewMaster(
		[]federation.WorkerClient{good, dead}, nil, federation.Security{},
		federation.WithBreaker(breakerOff))
	if err != nil {
		t.Fatalf("NewMaster with dead worker: %v", err)
	}
	defer m.Close()
	av := m.Availability()
	if len(av["edsd"]) != 1 || len(av["ppmi"]) != 0 {
		t.Fatalf("availability = %v, want edsd only", av)
	}
	// Recovery through ProbeNow readmits the dataset.
	dead.SetUp()
	m.ProbeNow()
	if av := m.Availability(); len(av["ppmi"]) != 1 {
		t.Fatalf("availability after recovery = %v, want ppmi back", av)
	}
}

// TestWorkerReplayDedupe: replaying a /localrun with the same JobID does
// not re-execute the step; a fresh JobID does.
func TestWorkerReplayDedupe(t *testing.T) {
	w := chaosWorker(t, "site0", "edsd", 15)
	req := federation.LocalRunRequest{
		JobID: "exp-replay/step-1", Func: "test_sideeffect",
		DataQuery: "SELECT age FROM " + federation.DataTable, ShareToGlobal: true,
	}
	base := sideEffectRuns.Load()
	r1, err := w.LocalRun(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.LocalRun(req) // replay
	if err != nil {
		t.Fatal(err)
	}
	if got := sideEffectRuns.Load() - base; got != 1 {
		t.Fatalf("step executed %d times for one JobID, want 1", got)
	}
	n1, _ := r1.Transfer.Float("n")
	n2, _ := r2.Transfer.Float("n")
	if n1 != n2 || n1 != 15 {
		t.Fatalf("replayed transfer n = %v/%v, want 15", n1, n2)
	}
	req.JobID = "exp-replay/step-2"
	if _, err := w.LocalRun(req); err != nil {
		t.Fatal(err)
	}
	if got := sideEffectRuns.Load() - base; got != 2 {
		t.Fatalf("fresh JobID did not execute (runs=%d)", got)
	}
}

// TestWorkerReplayConcurrent: concurrent duplicates of one JobID execute
// the step exactly once (the replica waits for the in-flight original).
func TestWorkerReplayConcurrent(t *testing.T) {
	w := chaosWorker(t, "site0", "edsd", 15)
	req := federation.LocalRunRequest{
		JobID: "exp-conc/step-1", Func: "test_sideeffect",
		DataQuery: "SELECT age FROM " + federation.DataTable, ShareToGlobal: true,
	}
	base := sideEffectRuns.Load()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.LocalRun(req); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := sideEffectRuns.Load() - base; got != 1 {
		t.Fatalf("step executed %d times under concurrent replays, want 1", got)
	}
}

// TestStragglerDeadline: a worker that answers too slowly is dropped at
// the step deadline while the quorum's partial result comes back.
func TestStragglerDeadline(t *testing.T) {
	var clients []federation.WorkerClient
	for i := 0; i < 3; i++ {
		w := chaosWorker(t, fmt.Sprintf("site%d", i), "edsd", 10)
		if i == 2 {
			fi := faultinject.Wrap(w)
			fi.Script("LocalRun", faultinject.Step{Delay: 2 * time.Second})
			clients = append(clients, fi)
		} else {
			clients = append(clients, w)
		}
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{},
		federation.WithBreaker(breakerOff),
		federation.WithTolerance(federation.Tolerance{MinWorkers: 2, StepDeadline: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess, err := m.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	total, err := sess.Sum(federation.LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
	if err != nil {
		t.Fatalf("Sum with straggler: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("step waited %v for the straggler, deadline did not fire", elapsed)
	}
	n, _ := total.Float("n")
	if n != 20 {
		t.Fatalf("partial n = %v, want 20", n)
	}
	if d := sess.Dropped(); len(d) != 1 || d[0] != "site2" {
		t.Fatalf("dropped = %v, want [site2]", d)
	}
}

// TestMergeQueryDegraded: the merge-table path drops a failing worker part
// under tolerance, and fails without it.
func TestMergeQueryDegraded(t *testing.T) {
	var clients []federation.WorkerClient
	var bad *faultinject.Client
	for i := 0; i < 3; i++ {
		w := chaosWorker(t, fmt.Sprintf("site%d", i), "edsd", 10*(i+1))
		if i == 1 {
			bad = faultinject.Wrap(w)
			clients = append(clients, bad)
		} else {
			clients = append(clients, w)
		}
	}
	newM := func(tol federation.Tolerance) *federation.Master {
		m, err := federation.NewMaster(clients, nil, federation.Security{},
			federation.WithBreaker(breakerOff), federation.WithTolerance(tol))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		return m
	}

	// Strict master: a failing part fails the query.
	strict := newM(federation.Tolerance{})
	bad.FailN("Query", 1)
	if _, err := strict.MergeQuery([]string{"edsd"}, "SELECT count(*) AS n FROM data"); err == nil {
		t.Fatal("strict MergeQuery with failing part succeeded, want error")
	}

	// Tolerant master: the failing part is dropped and named.
	tolerant := newM(federation.Tolerance{MinWorkers: 2})
	bad.FailN("Query", 1)
	tab, dropped, err := tolerant.MergeQueryDegraded([]string{"edsd"}, "SELECT count(*) AS n FROM data")
	if err != nil {
		t.Fatalf("degraded MergeQuery: %v", err)
	}
	if len(dropped) != 1 || dropped[0] != "site1" {
		t.Fatalf("dropped = %v, want [site1]", dropped)
	}
	if n := tab.Col(0).Float64s()[0]; n != 40 {
		t.Fatalf("partial count = %v, want 40 (sites 0,2)", n)
	}
}

// TestChaosFlapping drives repeated steps while a goroutine flaps two
// workers up and down; run under -race this exercises the breaker, retry
// and degraded paths concurrently. Every step must either succeed or fail
// with a federation error — never panic or deadlock.
func TestChaosFlapping(t *testing.T) {
	var clients []federation.WorkerClient
	var flappers []*faultinject.Client
	for i := 0; i < 4; i++ {
		w := chaosWorker(t, fmt.Sprintf("site%d", i), "edsd", 10)
		if i >= 2 {
			fi := faultinject.Wrap(w)
			flappers = append(flappers, fi)
			clients = append(clients, federation.WithRetry(fi, fastRetry))
		} else {
			clients = append(clients, w)
		}
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{},
		federation.WithBreaker(federation.BreakerConfig{FailureThreshold: 2, Cooldown: time.Millisecond, ProbeInterval: -1}),
		federation.WithTolerance(federation.Tolerance{MinWorkers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		down := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, fi := range flappers {
				if down {
					fi.SetDown()
				} else {
					fi.SetUp()
				}
			}
			down = !down
			time.Sleep(time.Millisecond)
		}
	}()

	succeeded := 0
	for i := 0; i < 30; i++ {
		sess, err := m.NewSession(nil)
		if err != nil {
			t.Fatal(err)
		}
		total, err := sess.Sum(federation.LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
		if err != nil {
			if !strings.Contains(err.Error(), "federation") && !strings.Contains(err.Error(), "worker") {
				t.Fatalf("step %d: unexpected error shape: %v", i, err)
			}
			continue
		}
		n, _ := total.Float("n")
		if n < 20 || n > 40 {
			t.Fatalf("step %d: n = %v outside [20,40]", i, n)
		}
		succeeded++
		m.ProbeNow() // let recovered workers rejoin between steps
	}
	close(stop)
	wg.Wait()
	if succeeded == 0 {
		t.Fatal("no step succeeded under flapping chaos; quorum of 2 healthy workers should carry")
	}
}
