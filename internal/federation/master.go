package federation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mip/internal/engine"
	"mip/internal/obs"
	"mip/internal/smpc"
)

// WorkerClient is the master's handle to a worker node, implemented
// directly by *Worker (in-process deployments) and by the HTTP client
// (multi-process deployments).
type WorkerClient interface {
	ID() string
	Datasets() ([]string, error)
	LocalRun(req LocalRunRequest) (LocalRunResponse, error)
	Query(sql string) (*engine.Table, error)
}

// Master governs the communication with and among the workers, keeps track
// of dataset availability for algorithm shipping, orchestrates algorithm
var masterLog = obs.Logger("master")

// flows and handles the aggregates coming back from local computations.
type Master struct {
	mu       sync.Mutex
	workers  []WorkerClient
	byID     map[string]WorkerClient
	workerDS map[string][]string // worker id → last-known datasets
	avail    map[string][]string // dataset → worker ids (derived from workerDS)
	smpc     *smpc.Cluster
	jobSeq   int
	security Security

	// Fault tolerance: per-worker circuit breakers plus the default
	// degraded-aggregation policy new sessions inherit.
	healthMu  sync.Mutex
	health    map[string]*workerHealth
	breaker   BreakerConfig
	tolerance Tolerance
	stopProbe chan struct{}
	closeOnce sync.Once
	now       func() time.Time

	// engineOpts configure the transient merge databases master-side
	// queries run on (WithEngineOptions). mergePlanID is the plan-cache
	// identity all of this master's merge DBs share, so their cache keys
	// coincide across queries (see newMergeDB).
	engineOpts  []engine.Option
	mergePlanID uint64

	// Result cache (nil = disabled) plus the per-worker dataset-version
	// snapshots it validates entries against.
	results    *ResultCache
	verMu      sync.Mutex
	workerVers map[string]workerVerState
}

// MasterOption configures a Master.
type MasterOption func(*Master)

// WithBreaker overrides the per-worker circuit-breaker configuration.
func WithBreaker(b BreakerConfig) MasterOption {
	return func(m *Master) { m.breaker = b }
}

// WithTolerance sets the default degraded-aggregation policy inherited by
// new sessions and by MergeQuery.
func WithTolerance(t Tolerance) MasterOption {
	return func(m *Master) { m.tolerance = t }
}

// WithResultCacheBytes enables the master's federated result cache with
// the given byte budget (<= 0 leaves it disabled). Repeated identical
// aggregates are served from memory as long as every involved worker's
// dataset versions still match; see resultcache.go for the invalidation
// contract.
func WithResultCacheBytes(budget int64) MasterOption {
	return func(m *Master) { m.results = NewResultCache(budget) }
}

// WithEngineOptions sets the engine options applied to the master's
// transient merge databases (MergeQuery, Explain) — parallelism and the
// per-query deadline/memory ceilings, so a federated statement is governed
// on the master exactly like a worker-local one.
func WithEngineOptions(opts ...engine.Option) MasterOption {
	return func(m *Master) { m.engineOpts = opts }
}

// Security selects the aggregation path for a master.
type Security struct {
	// UseSMPC routes aggregation through the SMPC cluster.
	UseSMPC bool
	// Noise is applied inside the SMPC protocol (secure aggregation with
	// central noise) when UseSMPC is set.
	Noise smpc.Noise
}

// NewMaster builds a master over the given workers. Workers whose initial
// availability scan fails are not fatal: they are skipped (their circuit
// breaker records the failure) and re-probed in the background until they
// come back — the flaky-site survival the clinical deployments demand.
func NewMaster(workers []WorkerClient, cluster *smpc.Cluster, sec Security, opts ...MasterOption) (*Master, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("federation: master needs at least one worker")
	}
	if sec.UseSMPC && cluster == nil {
		return nil, fmt.Errorf("federation: SMPC security requested but no cluster provided")
	}
	m := &Master{
		workers:     workers,
		byID:        make(map[string]WorkerClient, len(workers)),
		workerDS:    make(map[string][]string),
		avail:       make(map[string][]string),
		smpc:        cluster,
		security:    sec,
		health:      make(map[string]*workerHealth, len(workers)),
		stopProbe:   make(chan struct{}),
		now:         time.Now,
		mergePlanID: engine.NewPlanCacheIdentity(),
	}
	for _, w := range workers {
		if _, dup := m.byID[w.ID()]; dup {
			return nil, fmt.Errorf("federation: duplicate worker id %q", w.ID())
		}
		m.byID[w.ID()] = w
		m.health[w.ID()] = &workerHealth{}
		workerStateGauge(w.ID()).Set(0)
	}
	for _, o := range opts {
		o(m)
	}
	// Best-effort initial scan: unreachable workers are degraded, not fatal.
	_ = m.RefreshAvailability()
	if iv := m.breaker.probeInterval(); iv > 0 {
		go m.probeLoop(iv)
	}
	registerMaster(m)
	return m, nil
}

// Close stops the background re-probe loop and releases the master's
// observability registration so the worker gauge stops counting its
// workers. Safe to call more than once.
func (m *Master) Close() {
	m.closeOnce.Do(func() { close(m.stopProbe) })
	unregisterMaster(m)
}

// RefreshAvailability re-scans every worker's datasets concurrently,
// degrading gracefully: broken workers are skipped (and drop out of the
// availability map until the background probe readmits them) instead of
// failing the whole scan. It returns an error only when no worker could be
// scanned at all.
func (m *Master) RefreshAvailability() error {
	workers := m.Workers()
	type scan struct {
		id      string
		ds      []string
		err     error
		skipped bool
	}
	results := make([]scan, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		id := w.ID()
		if !m.allowCall(id) {
			results[i] = scan{id: id, skipped: true}
			continue
		}
		wg.Add(1)
		go func(i int, w WorkerClient) {
			defer wg.Done()
			ds, err := w.Datasets()
			m.reportResult(w.ID(), err)
			results[i] = scan{id: w.ID(), ds: ds, err: err}
		}(i, w)
	}
	wg.Wait()
	ok := 0
	var firstErr error
	m.mu.Lock()
	for _, r := range results {
		switch {
		case r.skipped:
			// Circuit open: keep nothing stale around.
			delete(m.workerDS, r.id)
		case r.err != nil:
			delete(m.workerDS, r.id)
			if firstErr == nil {
				firstErr = fmt.Errorf("federation: worker %s availability: %w", r.id, r.err)
			}
		default:
			m.workerDS[r.id] = r.ds
			ok++
		}
	}
	m.rebuildAvailLocked()
	m.mu.Unlock()
	if ok == 0 {
		if firstErr != nil {
			return firstErr
		}
		return fmt.Errorf("federation: no worker reachable (all circuits open)")
	}
	return nil
}

// rebuildAvailLocked derives the dataset → worker-ids map from the
// per-worker dataset records. Caller holds m.mu.
func (m *Master) rebuildAvailLocked() {
	m.avail = make(map[string][]string, len(m.avail))
	for _, w := range m.workers {
		for _, d := range m.workerDS[w.ID()] {
			m.avail[d] = append(m.avail[d], w.ID())
		}
	}
}

// Availability returns dataset → sorted worker ids.
func (m *Master) Availability() map[string][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]string, len(m.avail))
	for d, ws := range m.avail {
		cp := append([]string(nil), ws...)
		sort.Strings(cp)
		out[d] = cp
	}
	return out
}

// Datasets lists all known datasets, sorted.
func (m *Master) Datasets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.avail))
	for d := range m.avail {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Workers returns all worker handles.
func (m *Master) Workers() []WorkerClient {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]WorkerClient(nil), m.workers...)
}

// WorkersFor selects the workers holding any of the requested datasets —
// the "efficient algorithm shipping" the paper attributes to availability
// tracking. Empty datasets selects every worker.
func (m *Master) WorkersFor(datasets []string) []WorkerClient {
	if len(datasets) == 0 {
		return m.Workers()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := map[string]bool{}
	for _, d := range datasets {
		for _, id := range m.avail[d] {
			ids[id] = true
		}
	}
	var out []WorkerClient
	for _, w := range m.workers {
		if ids[w.ID()] {
			out = append(out, w)
		}
	}
	return out
}

// Tolerance is a session's degraded-aggregation policy: how many workers
// may drop out of a step before the step fails, and how long to wait for
// stragglers. The zero value requires every worker (no degradation) — the
// safe default for result fidelity.
type Tolerance struct {
	// MinWorkers is the absolute quorum: a step succeeds (degraded) as long
	// as at least this many workers respond.
	MinWorkers int
	// Quorum is a fractional quorum over the session's workers (e.g. 0.5).
	// The effective quorum is max(MinWorkers, ceil(Quorum·N)).
	Quorum float64
	// StepDeadline bounds one fan-out: workers that have not replied when
	// it expires are dropped (counting against the quorum). Zero waits
	// indefinitely.
	StepDeadline time.Duration
}

// Required returns the effective quorum for n workers.
func (t Tolerance) Required(n int) int {
	if t.MinWorkers <= 0 && t.Quorum <= 0 {
		return n
	}
	req := t.MinWorkers
	if t.Quorum > 0 {
		if q := int(math.Ceil(t.Quorum * float64(n))); q > req {
			req = q
		}
	}
	if req < 1 {
		req = 1
	}
	if req > n {
		req = n
	}
	return req
}

// NewSession opens an execution session for one experiment, scoped to the
// workers that hold the requested datasets. The session inherits the
// master's default Tolerance; override per experiment with SetTolerance.
func (m *Master) NewSession(datasets []string) (*Session, error) {
	ws := m.WorkersFor(datasets)
	if len(ws) == 0 {
		return nil, fmt.Errorf("federation: no worker holds datasets %v", datasets)
	}
	m.mu.Lock()
	m.jobSeq++
	id := fmt.Sprintf("exp-%d", m.jobSeq)
	tol := m.tolerance
	m.mu.Unlock()
	return &Session{
		id:        id,
		master:    m,
		workers:   ws,
		datasets:  datasets,
		tolerance: tol,
		cancelCh:  make(chan struct{}),
	}, nil
}

// MergeQuery registers a transient merge table over the workers' data
// tables and runs an aggregate SQL against it: the paper's non-secure
// remote/merge-table aggregation path. The query must reference DataTable.
// Under a Tolerance that admits partial results, failing parts are dropped
// as long as the quorum holds; MergeQueryDegraded reports which.
func (m *Master) MergeQuery(datasets []string, sql string) (*engine.Table, error) {
	t, _, err := m.MergeQueryDegraded(datasets, sql)
	return t, err
}

// MergeQueryDegraded is MergeQuery plus the ids of worker parts that
// failed and were dropped from the aggregate (empty on a full result).
func (m *Master) MergeQueryDegraded(datasets []string, sql string) (*engine.Table, []string, error) {
	return m.MergeQueryDegradedAs("", datasets, sql)
}

// MergeQueryDegradedAs is MergeQueryDegraded with the statement attributed
// to a tenant account: the master-side merge statement (and its shipped
// rows/bytes) meters under that tenant and lands on the audit chain.
//
// With the result cache enabled, a repeat of a complete (non-degraded)
// query whose workers' dataset versions are unchanged is served straight
// from memory — no merge database, no worker fan-out — and is still
// metered and audited under the tenant so accounting stays honest.
// Identical concurrent misses collapse into one execution.
func (m *Master) MergeQueryDegradedAs(tenant string, datasets []string, sql string) (*engine.Table, []string, error) {
	ws := m.WorkersFor(datasets)
	if len(ws) == 0 {
		return nil, nil, fmt.Errorf("federation: no worker holds datasets %v", datasets)
	}
	key, cacheable := "", false
	if m.results != nil {
		key, cacheable = m.resultKey(tenant, datasets, sql, ws)
	}
	if !cacheable {
		return m.mergeQueryExec(tenant, datasets, sql, ws)
	}
	start := m.now()
	t, f, leader := m.results.begin(key)
	if t != nil {
		m.recordCacheHit(tenant, datasets, sql, ws, t, m.now().Sub(start))
		return t, nil, nil
	}
	if !leader {
		<-f.done
		if f.err != nil || f.table == nil {
			// The leader's failure is its own — its deadline, its caller's
			// cancellation, a cache flush aborting the flight. Don't hand
			// it to an unrelated caller; run the query for this one.
			return m.mergeQueryExec(tenant, datasets, sql, ws)
		}
		if len(f.dropped) == 0 {
			m.recordCacheHit(tenant, datasets, sql, ws, f.table, m.now().Sub(start))
			return f.table, nil, nil
		}
		// A degraded result shared from the leader's flight is still a
		// serve: meter and audit it like every other path.
		m.recordServe(tenant, datasets, sql, ws, f.table, m.now().Sub(start), "shared-degraded")
		return f.table, f.dropped, nil
	}
	return m.runFlightLeader(key, f, tenant, datasets, sql, ws)
}

// runFlightLeader executes a singleflight leader's query, guaranteeing the
// flight is finished (waiters released) no matter how execution ends: a
// panicking leader publishes an error to its waiters before re-panicking,
// instead of leaving the inflight entry blocking every future identical
// query forever.
func (m *Master) runFlightLeader(key string, f *resultFlight, tenant string, datasets []string, sql string, ws []WorkerClient) (t *engine.Table, dropped []string, err error) {
	defer func() {
		if p := recover(); p != nil {
			m.results.finish(key, f, nil, nil, fmt.Errorf("federation: query leader panicked: %v", p))
			panic(p)
		}
		m.results.finish(key, f, t, dropped, err)
	}()
	return m.mergeQueryExec(tenant, datasets, sql, ws)
}

// newMergeDB builds the transient merge database for one master-side
// statement over the given workers. All of a master's merge DBs share one
// plan-cache identity: they apply the identical schema (RegisterMerge of
// DataTable on a fresh DB), so their plan-cache keys coincide and a
// repeated federated statement hits the memoized plan instead of every
// query inserting keys no later DB could ever reach.
func (m *Master) newMergeDB(ws []WorkerClient) (*engine.DB, *engine.MergeTable) {
	opts := append(append([]engine.Option(nil), m.engineOpts...),
		engine.WithPlanCacheIdentity(m.mergePlanID))
	mdb := engine.NewDB(opts...)
	mt := &engine.MergeTable{TableName: DataTable}
	for _, w := range ws {
		mt.Parts = append(mt.Parts, &workerPart{w: w, m: m})
	}
	if req := m.tolerance.Required(len(ws)); req < len(ws) {
		mt.MinParts = req
	}
	mdb.RegisterMerge(DataTable, mt)
	return mdb, mt
}

// mergeQueryExec runs one federated merge query over the given workers on
// a transient merge database (the uncached execution path).
func (m *Master) mergeQueryExec(tenant string, datasets []string, sql string, ws []WorkerClient) (*engine.Table, []string, error) {
	mdb, mt := m.newMergeDB(ws)
	ctx := engine.WithQueryAttribution(context.Background(),
		engine.Attribution{Tenant: tenant, Datasets: datasets})
	t, err := mdb.QueryCtx(ctx, sql)
	if err != nil {
		return nil, nil, err
	}
	dropped := mt.LastStats().FailedParts
	if len(dropped) > 0 {
		fedDegradedSteps.Inc()
		fedDroppedWorkers.Add(int64(len(dropped)))
	}
	return t, dropped, nil
}

// Explain plans a federated query over the merge view of the workers
// holding the given datasets, returning the rendered plan lines. With
// analyze set the query executes (shipping partial aggregates or rows
// exactly like MergeQuery) and the lines carry measured per-part rows and
// timings; without it only the predicted plan shape is returned.
func (m *Master) Explain(datasets []string, sql string, analyze bool) ([]string, error) {
	return m.ExplainAs("", datasets, sql, analyze)
}

// ExplainAs is Explain with the (possibly executing, under analyze)
// statement attributed to a tenant account.
//
// When the result cache holds the statement's current result, ANALYZE does
// not fabricate an operator tree that never ran: it reports a single
// `cached` node carrying the real row and byte counts of the stored
// result, and the serve is metered like any other cache hit.
func (m *Master) ExplainAs(tenant string, datasets []string, sql string, analyze bool) ([]string, error) {
	ws := m.WorkersFor(datasets)
	if len(ws) == 0 {
		return nil, fmt.Errorf("federation: no worker holds datasets %v", datasets)
	}
	if analyze && m.results != nil {
		start := m.now()
		if key, ok := m.resultKey(tenant, datasets, sql, ws); ok {
			if t, hit := m.results.lookup(key); hit {
				node := &engine.PlanNode{
					Op:      "cached",
					Detail:  "result cache",
					RowsOut: int64(t.NumRows()),
					Batches: int64(t.NumCols()),
					Bytes:   t.ByteSize(),
				}
				m.recordCacheHit(tenant, datasets, sql, ws, t, m.now().Sub(start))
				return append(node.Render(true), "cache=hit"), nil
			}
		}
	}
	mdb, _ := m.newMergeDB(ws)
	keyword := "EXPLAIN "
	if analyze {
		keyword = "EXPLAIN ANALYZE "
	}
	ctx := engine.WithQueryAttribution(context.Background(),
		engine.Attribution{Tenant: tenant, Datasets: datasets})
	t, err := mdb.QueryCtx(ctx, keyword+sql)
	if err != nil {
		return nil, err
	}
	lines := make([]string, t.NumRows())
	for i := range lines {
		lines[i] = t.Col(0).StringAt(i)
	}
	return lines, nil
}

// recordCacheHit meters a result-cache serve under the tenant and seals it
// onto the audit chain, mirroring what the engine governor records for an
// executed statement — usage accounting must not go dark just because the
// query never ran.
func (m *Master) recordCacheHit(tenant string, datasets []string, sql string, ws []WorkerClient, t *engine.Table, elapsed time.Duration) {
	m.recordServe(tenant, datasets, sql, ws, t, elapsed, "cached")
}

// recordServe is the shared metering/audit path for results served without
// this caller executing: result-cache hits ("cached") and degraded results
// shared from a singleflight leader ("shared-degraded").
func (m *Master) recordServe(tenant string, datasets []string, sql string, ws []WorkerClient, t *engine.Table, elapsed time.Duration, verdict string) {
	ids := make([]string, len(ws))
	for i, w := range ws {
		ids[i] = w.ID()
	}
	obs.DefaultTenants.Record(tenant, obs.UsageDelta{
		Queries: 1,
		RowsOut: int64(t.NumRows()),
		Seconds: elapsed.Seconds(),
		Verdict: engine.VerdictCompleted,
	})
	obs.DefaultAudit.Append(obs.AuditRecord{
		Kind:      "query",
		Tenant:    tenant,
		SQLDigest: obs.SQLDigest(sql),
		Datasets:  datasets,
		Workers:   ids,
		Verdict:   verdict,
		Seconds:   elapsed.Seconds(),
		Rows:      int64(t.NumRows()),
	})
}

// ResultCacheStats snapshots the master's result cache (zero when the
// cache is disabled).
func (m *Master) ResultCacheStats() ResultCacheStats {
	return m.results.Stats()
}

// FlushResultCache drops every cached result, returning how many entries
// were held. Exposed through the API's cache flush endpoint.
func (m *Master) FlushResultCache() int {
	n := m.results.Stats().Entries
	m.results.Flush()
	return n
}

// workerPart adapts a WorkerClient to the engine's merge-table Part,
// feeding call outcomes into the master's circuit breakers.
type workerPart struct {
	w WorkerClient
	m *Master
}

// ctxQueryClient is the optional WorkerClient extension for context-aware
// remote queries; *Worker and the HTTP client implement it. Kept optional so
// existing fakes satisfying plain WorkerClient keep compiling.
type ctxQueryClient interface {
	QueryCtx(ctx context.Context, sql string) (*engine.Table, error)
}

// jobCanceller is the optional WorkerClient extension for aborting an
// in-flight step by job id.
type jobCanceller interface {
	CancelJob(jobID string) bool
}

func (p *workerPart) PartName() string { return p.w.ID() }

func (p *workerPart) Query(sql string) (*engine.Table, error) {
	return p.QueryCtx(context.Background(), sql)
}

// QueryCtx implements engine.CtxPart: cancelling a federated merge query on
// the master propagates to workers that understand contexts.
func (p *workerPart) QueryCtx(ctx context.Context, sql string) (*engine.Table, error) {
	if p.m != nil && !p.m.allowCall(p.w.ID()) {
		return nil, fmt.Errorf("worker %s: %w", p.w.ID(), ErrCircuitOpen)
	}
	var t *engine.Table
	var err error
	if cq, ok := p.w.(ctxQueryClient); ok {
		t, err = cq.QueryCtx(ctx, sql)
	} else {
		t, err = p.w.Query(sql)
	}
	if p.m != nil {
		p.m.reportResult(p.w.ID(), err)
	}
	return t, err
}

// Session is one experiment execution: the handle an algorithm flow uses
// to run local steps, aggregate transfers and iterate — the Go rendering of
// the paper's Figure 2 programming model.
type Session struct {
	id        string
	master    *Master
	workers   []WorkerClient
	datasets  []string
	tenant    string // owner of the experiment, for metering and audit
	stepSeq   int
	trace     obs.TraceRef // zero value disables tracing
	tolerance Tolerance

	// End-to-end cancellation: Cancel closes cancelCh (failing the current
	// and any future step) and sends a cancel RPC for the in-flight job to
	// every worker, so worker-side engine queries abort mid-step.
	cancelOnce sync.Once
	cancelCh   chan struct{} // nil in zero-value Sessions: never cancellable
	jobMu      sync.Mutex
	curJob     string

	// dropped accumulates the ids of workers excluded from degraded steps
	// (partial-aggregate metadata surfaced by the API).
	dropMu  sync.Mutex
	dropped map[string]bool

	// GlobalState carries flow state across steps (model parameters in
	// iterative algorithms).
	GlobalState any
}

// ID returns the session's experiment id.
func (s *Session) ID() string { return s.id }

// SetTrace attaches a trace context (typically the experiment root span)
// so every subsequent step records spans under it. The zero TraceRef
// disables tracing.
func (s *Session) SetTrace(ref obs.TraceRef) { s.trace = ref }

// Trace returns the session's trace context.
func (s *Session) Trace() obs.TraceRef { return s.trace }

// SetTenant attributes the session's work to a tenant: every local step
// ships the tenant to the workers, where it lands on the engine's query
// registry, the tenant meter, and the audit trail. Call before running
// steps.
func (s *Session) SetTenant(tenant string) { s.tenant = tenant }

// Tenant returns the session's tenant attribution ("" when untagged).
func (s *Session) Tenant() string { return s.tenant }

// NumWorkers returns the worker count in scope.
func (s *Session) NumWorkers() int { return len(s.workers) }

// WorkerIDs returns the ids of the workers in scope, in session order.
func (s *Session) WorkerIDs() []string {
	out := make([]string, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.ID()
	}
	return out
}

// Datasets returns the datasets in scope.
func (s *Session) Datasets() []string { return append([]string(nil), s.datasets...) }

// Secure reports whether aggregation goes through SMPC.
func (s *Session) Secure() bool { return s.master.security.UseSMPC }

// SetTolerance overrides the session's degraded-aggregation policy
// (inherited from the master by default). Call before running steps.
func (s *Session) SetTolerance(t Tolerance) { s.tolerance = t }

// Tolerance returns the session's degraded-aggregation policy.
func (s *Session) Tolerance() Tolerance { return s.tolerance }

// Dropped returns the sorted ids of workers dropped from any degraded
// step of this session — the partial-aggregate metadata recorded in
// experiment results and trace spans.
func (s *Session) Dropped() []string {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	out := make([]string, 0, len(s.dropped))
	for id := range s.dropped {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (s *Session) recordDropped(ids []string) {
	s.dropMu.Lock()
	defer s.dropMu.Unlock()
	if s.dropped == nil {
		s.dropped = make(map[string]bool)
	}
	for _, id := range ids {
		s.dropped[id] = true
	}
}

// nextJobID mints the globally unique computation identifier used to
// retrieve results asynchronously and to key SMPC imports.
func (s *Session) nextJobID() string {
	s.stepSeq++
	return fmt.Sprintf("%s/step-%d", s.id, s.stepSeq)
}

// Cancel aborts the experiment: the in-flight step fails immediately on the
// master, a cancel RPC for the current job fans out to every worker (so
// their engine queries stop mid-batch), and any future step of this session
// fails fast. Safe to call from any goroutine, more than once.
func (s *Session) Cancel() {
	if s.cancelCh == nil {
		return
	}
	s.cancelOnce.Do(func() { close(s.cancelCh) })
	s.jobMu.Lock()
	job := s.curJob
	s.jobMu.Unlock()
	s.cancelWorkers(job)
}

// Cancelled reports whether Cancel has been called.
func (s *Session) Cancelled() bool {
	if s.cancelCh == nil {
		return false
	}
	select {
	case <-s.cancelCh:
		return true
	default:
		return false
	}
}

// cancelWorkers fans a CancelJob to every session worker that supports it.
func (s *Session) cancelWorkers(jobID string) {
	if jobID == "" {
		return
	}
	for _, w := range s.workers {
		if jc, ok := w.(jobCanceller); ok {
			jc.CancelJob(jobID)
		}
	}
}

// DataQuery builds the SQL for a step's relation input: the requested
// variables from the harmonized data table, filtered to the session
// datasets and an optional extra predicate, with complete-cases semantics
// when dropNA is set.
func (s *Session) DataQuery(vars []string, filter string, dropNA bool) string {
	cols := "*"
	if len(vars) > 0 {
		quoted := make([]string, len(vars))
		for i, v := range vars {
			quoted[i] = quoteIdent(v)
		}
		cols = strings.Join(quoted, ", ")
	}
	var conds []string
	if len(s.datasets) > 0 {
		vals := make([]string, len(s.datasets))
		for i, d := range s.datasets {
			vals[i] = "'" + strings.ReplaceAll(d, "'", "''") + "'"
		}
		conds = append(conds, fmt.Sprintf("dataset IN (%s)", strings.Join(vals, ", ")))
	}
	if dropNA {
		for _, v := range vars {
			conds = append(conds, quoteIdent(v)+" IS NOT NULL")
		}
	}
	if filter != "" {
		conds = append(conds, "("+filter+")")
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", cols, DataTable)
	if len(conds) > 0 {
		sql += " WHERE " + strings.Join(conds, " AND ")
	}
	return sql
}

// quoteIdent delegates to the engine's renderer so the SQL this layer
// generates and the SQL the engine re-renders for pushdown quote
// identically (the engine version additionally quotes reserved keywords).
func quoteIdent(s string) string { return engine.QuoteIdent(s) }

// LocalRunSpec parameterizes a LocalRun round.
type LocalRunSpec struct {
	Func      string
	Vars      []string // variables the step reads (complete cases)
	Filter    string   // extra SQL predicate
	KeepNA    bool     // keep rows with NULLs in Vars
	Kwargs    Kwargs
	DataQuery string // overrides the generated query when set
}

// LocalRun executes a local step on every session worker concurrently and
// returns the per-worker transfers (plain path). This is the
// `self.local_run(..., share_to_global=[True])` call of Figure 2.
func (s *Session) LocalRun(spec LocalRunSpec) ([]Transfer, error) {
	resps, err := s.localRun(spec, nil, s.trace.SpanID)
	if err != nil {
		return nil, err
	}
	out := make([]Transfer, len(resps))
	for i, r := range resps {
		out[i] = r.Transfer
	}
	return out, nil
}

// localRun fans one local step out to every session worker concurrently.
// parentSpan is the trace span the step nests under ("" parents the step
// at the trace root). Each worker round-trip gets its own span; spans the
// worker ships back in the response envelope are grafted into the store.
//
// Failure handling: workers whose circuit breaker is open are skipped
// without a call; failed and straggling workers are dropped when the
// session's Tolerance quorum still holds (plain path only — SMPC needs
// every worker's shares), and the survivors' responses are returned with
// the dropped ids recorded on the session and the step span.
func (s *Session) localRun(spec LocalRunSpec, secureKeys []string, parentSpan string) ([]LocalRunResponse, error) {
	if s.Cancelled() {
		return nil, fmt.Errorf("federation: experiment %s: %w", s.id, engine.ErrQueryCancelled)
	}
	jobID := s.nextJobID()
	s.jobMu.Lock()
	s.curJob = jobID
	s.jobMu.Unlock()
	dq := spec.DataQuery
	if dq == "" {
		dq = s.DataQuery(spec.Vars, spec.Filter, !spec.KeepNA)
	}
	req := LocalRunRequest{
		JobID:         jobID,
		Func:          spec.Func,
		Tenant:        s.tenant,
		Datasets:      s.datasets,
		DataQuery:     dq,
		Kwargs:        spec.Kwargs,
		ShareToGlobal: len(secureKeys) == 0,
		SecureKeys:    secureKeys,
	}
	secure := len(secureKeys) > 0
	step := obs.DefaultTraces.StartSpan(s.trace.TraceID, parentSpan, "localrun "+spec.Func)
	step.SetAttr("job_id", jobID)
	step.SetAttr("workers", strconv.Itoa(len(s.workers)))
	defer step.End()
	fedLocalRuns.Inc()
	start := time.Now()

	type result struct {
		i    int
		resp LocalRunResponse
		err  error
	}
	ch := make(chan result, len(s.workers))
	resps := make([]LocalRunResponse, len(s.workers))
	failed := make([]error, len(s.workers))
	settled := make([]bool, len(s.workers))
	launched := 0
	for i, w := range s.workers {
		if !s.master.allowCall(w.ID()) {
			failed[i] = fmt.Errorf("worker %s: %w", w.ID(), ErrCircuitOpen)
			settled[i] = true
			continue
		}
		launched++
		go func(i int, w WorkerClient) {
			ws := step.StartChild("worker " + w.ID())
			wreq := req
			wreq.Trace = ws.Ref()
			t0 := time.Now()
			r, err := w.LocalRun(wreq)
			workerRoundtrip(w.ID()).Observe(time.Since(t0).Seconds())
			s.master.reportResult(w.ID(), err)
			obs.DefaultTraces.Import(r.Spans)
			if err != nil {
				ws.SetError(err)
				ws.End()
				ch <- result{i: i, err: fmt.Errorf("worker %s: %w", w.ID(), err)}
				return
			}
			ws.SetAttr("rows", strconv.Itoa(r.Rows))
			ws.End()
			ch <- result{i: i, resp: r}
		}(i, w)
	}

	// Collect until every launched worker replied or the straggler deadline
	// fires. Late repliers write to the buffered channel, so their
	// goroutines never leak; their breaker reports still land.
	var deadline <-chan time.Time
	if s.tolerance.StepDeadline > 0 {
		timer := time.NewTimer(s.tolerance.StepDeadline)
		defer timer.Stop()
		deadline = timer.C
	}
	timedOut := false
	cancelled := false
	for received := 0; received < launched && !timedOut && !cancelled; {
		select {
		case r := <-ch:
			received++
			settled[r.i] = true
			if r.err != nil {
				failed[r.i] = r.err
			} else {
				resps[r.i] = r.resp
			}
		case <-deadline:
			timedOut = true
		case <-s.cancelCh:
			// Experiment killed mid-step: fan the cancel to the workers so
			// their in-engine executions stop, then fail the step. Stragglers
			// still drain into the buffered channel — no goroutine leaks.
			cancelled = true
			s.cancelWorkers(jobID)
		}
	}
	if cancelled {
		err := fmt.Errorf("federation: experiment %s: %w", s.id, engine.ErrQueryCancelled)
		step.SetError(err)
		return nil, err
	}
	if timedOut {
		for i, w := range s.workers {
			if !settled[i] {
				failed[i] = fmt.Errorf("worker %s: straggler: no reply within %s", w.ID(), s.tolerance.StepDeadline)
				settled[i] = true
			}
		}
	}
	fedFanoutSeconds.Observe(time.Since(start).Seconds())

	var ok []LocalRunResponse
	var droppedIDs []string
	var errs []error
	for i := range s.workers {
		if failed[i] != nil {
			droppedIDs = append(droppedIDs, s.workers[i].ID())
			errs = append(errs, failed[i])
		} else {
			ok = append(ok, resps[i])
		}
	}
	if len(errs) == 0 {
		return ok, nil
	}
	fedLocalRunErrors.Inc()
	if secure {
		// Full-threshold secure aggregation opens the sum from every
		// worker's shares; a missing worker makes the aggregate
		// unrecoverable, so the secure path never degrades.
		err := fmt.Errorf("federation: secure aggregation requires shares from all %d workers and cannot degrade to a partial result: %w",
			len(s.workers), errors.Join(errs...))
		step.SetError(err)
		return nil, err
	}
	required := s.tolerance.Required(len(s.workers))
	stepLog := obs.WithTrace(masterLog, &obs.TraceRef{TraceID: s.trace.TraceID, SpanID: step.ID()}).With(
		"func", spec.Func, "job_id", jobID)
	if len(ok) < required {
		err := fmt.Errorf("federation: quorum not met: %d of %d workers responded, need %d: %w",
			len(ok), len(s.workers), required, errors.Join(errs...))
		step.SetError(err)
		stepLog.Error("quorum not met",
			"responded", len(ok), "workers", len(s.workers), "required", required)
		return nil, err
	}
	// Degraded success: the surviving quorum's partial aggregate.
	s.recordDropped(droppedIDs)
	fedDegradedSteps.Inc()
	fedDroppedWorkers.Add(int64(len(droppedIDs)))
	step.SetAttr("dropped_workers", strings.Join(droppedIDs, ","))
	stepLog.Warn("degraded step: workers dropped",
		"dropped", strings.Join(droppedIDs, ","), "responded", len(ok))
	return ok, nil
}

// SecureSum runs a local step on every worker, secret-shares the named
// numeric transfer entries into the SMPC cluster, and returns their secure
// sum (with the master's configured noise applied in-protocol). This is
// the paper's crown-jewel path: the master only ever sees the aggregate.
func (s *Session) SecureSum(spec LocalRunSpec, keys ...string) (Transfer, error) {
	if s.master.smpc == nil || !s.master.security.UseSMPC {
		return nil, fmt.Errorf("federation: session has no SMPC cluster")
	}
	return s.aggregate(spec, smpc.OpSum, keys)
}

// AggregateSum sums the named numeric entries across plain transfers —
// the non-secure equivalent of SecureSum, used when the deployment handles
// non-sensitive data.
func AggregateSum(transfers []Transfer, keys ...string) (Transfer, error) {
	if len(transfers) == 0 {
		return nil, fmt.Errorf("federation: no transfers to aggregate")
	}
	var total []float64
	var shapes map[string][]int
	for i, t := range transfers {
		flat, sh, err := flattenNumeric(t, keys)
		if err != nil {
			return nil, fmt.Errorf("federation: transfer %d: %w", i, err)
		}
		if total == nil {
			total = flat
			shapes = sh
			continue
		}
		if !shapesEqual(shapes, sh) || len(flat) != len(total) {
			return nil, fmt.Errorf("federation: transfer %d has inconsistent shapes", i)
		}
		for j := range total {
			total[j] += flat[j]
		}
	}
	return unflattenNumeric(total, shapes)
}

// Sum runs a local step and aggregates the named keys through the
// configured path (SMPC when the master is secure, plain otherwise): the
// one-call form used by most algorithm flows.
func (s *Session) Sum(spec LocalRunSpec, keys ...string) (Transfer, error) {
	return s.aggregate(spec, smpc.OpSum, keys)
}

// Min runs a local step and takes the element-wise minimum of the named
// keys across workers.
func (s *Session) Min(spec LocalRunSpec, keys ...string) (Transfer, error) {
	return s.aggregate(spec, smpc.OpMin, keys)
}

// Max runs a local step and takes the element-wise maximum of the named
// keys across workers.
func (s *Session) Max(spec LocalRunSpec, keys ...string) (Transfer, error) {
	return s.aggregate(spec, smpc.OpMax, keys)
}

func (s *Session) aggregate(spec LocalRunSpec, op smpc.Op, keys []string) (Transfer, error) {
	if s.master.security.UseSMPC {
		iter := obs.DefaultTraces.StartSpan(s.trace.TraceID, s.trace.SpanID, "aggregate "+op.String()+" "+spec.Func)
		defer iter.End()
		resps, err := s.localRun(spec, keys, iter.ID())
		if err != nil {
			iter.SetError(err)
			return nil, err
		}
		shapes := resps[0].Shapes
		for _, r := range resps[1:] {
			if !shapesEqual(shapes, r.Shapes) {
				return nil, fmt.Errorf("federation: workers reported inconsistent secure shapes")
			}
		}
		stepJob := fmt.Sprintf("%s/step-%d", s.id, s.stepSeq)
		noise := smpc.Noise{}
		if op == smpc.OpSum {
			noise = s.master.security.Noise
		}
		round := iter.StartChild("smpc " + op.String())
		round.SetAttr("workers", strconv.Itoa(len(resps)))
		flat, err := s.master.smpc.Aggregate(stepJob, op, noise)
		round.SetError(err)
		round.End()
		if err != nil {
			iter.SetError(err)
			return nil, err
		}
		return unflattenNumeric(flat, shapes)
	}
	transfers, err := s.LocalRun(spec)
	if err != nil {
		return nil, err
	}
	return aggregateFold(transfers, op, keys)
}

// aggregateFold combines plain transfers element-wise with the given op.
func aggregateFold(transfers []Transfer, op smpc.Op, keys []string) (Transfer, error) {
	if len(transfers) == 0 {
		return nil, fmt.Errorf("federation: no transfers to aggregate")
	}
	var total []float64
	var shapes map[string][]int
	for i, t := range transfers {
		flat, sh, err := flattenNumeric(t, keys)
		if err != nil {
			return nil, fmt.Errorf("federation: transfer %d: %w", i, err)
		}
		if total == nil {
			total = flat
			shapes = sh
			continue
		}
		if !shapesEqual(shapes, sh) || len(flat) != len(total) {
			return nil, fmt.Errorf("federation: transfer %d has inconsistent shapes", i)
		}
		for j := range total {
			switch op {
			case smpc.OpSum:
				total[j] += flat[j]
			case smpc.OpMin:
				if flat[j] < total[j] {
					total[j] = flat[j]
				}
			case smpc.OpMax:
				if flat[j] > total[j] {
					total[j] = flat[j]
				}
			default:
				return nil, fmt.Errorf("federation: unsupported plain aggregation %v", op)
			}
		}
	}
	return unflattenNumeric(total, shapes)
}

// SecureUnion runs a local step and takes the secure disjoint union of the
// named vector entry across workers (e.g. distinct event times for
// Kaplan-Meier).
func (s *Session) SecureUnion(spec LocalRunSpec, key string) ([]float64, error) {
	if !s.master.security.UseSMPC {
		transfers, err := s.LocalRun(spec)
		if err != nil {
			return nil, err
		}
		seen := map[float64]struct{}{}
		for _, t := range transfers {
			vs, err := t.Floats(key)
			if err != nil {
				return nil, err
			}
			for _, v := range vs {
				seen[v] = struct{}{}
			}
		}
		out := make([]float64, 0, len(seen))
		for v := range seen {
			out = append(out, v)
		}
		sort.Float64s(out)
		return out, nil
	}
	// Secure path: workers import the vector under the step job id; union
	// opens the merged set.
	if _, err := s.localRun(spec, []string{key}, s.trace.SpanID); err != nil {
		return nil, err
	}
	stepJob := fmt.Sprintf("%s/step-%d", s.id, s.stepSeq)
	round := obs.DefaultTraces.StartSpan(s.trace.TraceID, s.trace.SpanID, "smpc union")
	defer round.End()
	return s.master.smpc.Aggregate(stepJob, smpc.OpUnion, smpc.Noise{})
}

// GlobalRun executes a registered global step on the master (Figure 2's
// `self.global_run`).
func (s *Session) GlobalRun(fn string, localTransfers []Transfer, kwargs Kwargs) (Transfer, error) {
	g := DefaultRegistry.Global(fn)
	if g == nil {
		return nil, fmt.Errorf("federation: no global func %q", fn)
	}
	out, newState, err := g(s.GlobalState, localTransfers, kwargs)
	if err != nil {
		return nil, err
	}
	s.GlobalState = newState
	return out, nil
}
