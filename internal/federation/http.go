package federation

import (
	"mip/internal/engine"
	"mip/internal/obs"

	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
	"unicode/utf8"
)

// The HTTP transport lets a Master drive Workers living in other processes
// or hosts, mirroring the paper's deployment where nodes talk through REST
// and message queues. Endpoints:
//
//	POST /localrun  — execute a local step (LocalRunRequest → LocalRunResponse)
//	POST /cancel    — abort an in-flight step by job id
//	POST /query     — run SQL against the worker engine (non-sensitive mode)
//	GET  /datasets  — list hosted datasets (+ version stamps)
//	GET  /datastamp — cheap data-change probe for the result cache
//	GET  /healthz   — liveness + worker status JSON
//	GET  /metrics   — Prometheus text exposition
//
// Payloads are JSON; tables travel as WireTable. Trace context rides the
// X-MIP-Trace header (and the LocalRunRequest envelope).

// WorkerServer exposes a Worker over HTTP.
type WorkerServer struct {
	Worker *Worker
	// AllowRawQuery enables the /query endpoint (the remote-table path).
	// Production privacy-sensitive deployments leave it off: "the databases
	// are not explorable by users".
	AllowRawQuery bool
	// Start stamps the process start for /healthz uptime; Handler defaults
	// it to the first Handler call.
	Start time.Time
}

// Handler returns the server's HTTP mux, wrapped in the obs middleware so
// every endpoint reports request count/latency/status metrics.
func (s *WorkerServer) Handler() http.Handler {
	if s.Start.IsZero() {
		s.Start = time.Now()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /localrun", s.handleLocalRun)
	mux.HandleFunc("POST /cancel", s.handleCancel)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /datastamp", s.handleDataStamp)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.MetricsHandler())
	return obs.Middleware("worker", mux)
}

func (s *WorkerServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ds, _ := s.Worker.Datasets()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"worker":         s.Worker.ID(),
		"uptime_seconds": time.Since(s.Start).Seconds(),
		"datasets":       len(ds),
	})
}

func (s *WorkerServer) handleLocalRun(w http.ResponseWriter, r *http.Request) {
	var req LocalRunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// The envelope's trace field wins; the header covers clients that only
	// speak the wire protocol.
	if req.Trace == nil {
		if ref, ok := obs.ParseTraceRef(r.Header.Get(obs.TraceHeader)); ok {
			req.Trace = &ref
		}
	}
	resp, err := s.Worker.LocalRunCtx(r.Context(), req)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCancel aborts an in-flight step by job id (the master-side kill
// path). The response reports whether a live job was found.
func (s *WorkerServer) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"cancelled": s.Worker.CancelJob(req.JobID)})
}

func (s *WorkerServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.AllowRawQuery {
		writeJSON(w, http.StatusForbidden, map[string]string{"error": "raw queries disabled on this worker"})
		return
	}
	var req struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	t, err := s.Worker.QueryCtx(r.Context(), req.SQL)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, EncodeTable(t))
}

func (s *WorkerServer) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	info, err := s.Worker.DatasetInfo()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDataStamp serves the cheap data-change probe the master's result
// cache polls before serving a cached entry.
func (s *WorkerServer) handleDataStamp(w http.ResponseWriter, _ *http.Request) {
	stamp, err := s.Worker.DataStamp()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"stamp": stamp})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Default per-request timeouts for the HTTP worker client. Metadata calls
// (datasets, health) fail fast; run calls get room for heavy local steps.
const (
	DefaultMetaTimeout = 10 * time.Second
	DefaultRunTimeout  = 2 * time.Minute
)

// HTTPWorkerClient implements WorkerClient against a remote WorkerServer.
// Idempotent calls (/datasets, /healthz, and /localrun — replay-safe
// because workers dedupe by JobID) retry transient failures under Retry.
type HTTPWorkerClient struct {
	WorkerID string
	BaseURL  string
	Client   *http.Client
	// MetaTimeout bounds metadata requests (/datasets); RunTimeout bounds
	// /localrun and /query. Zero values fall back to the defaults.
	MetaTimeout time.Duration
	RunTimeout  time.Duration
	// Retry is the backoff policy for idempotent calls. The zero value
	// disables retries; NewHTTPWorkerClient installs DefaultRetryPolicy.
	Retry RetryPolicy
}

// NewHTTPWorkerClient dials a worker's base URL (e.g. http://host:port).
func NewHTTPWorkerClient(id, baseURL string) *HTTPWorkerClient {
	return &HTTPWorkerClient{
		WorkerID:    id,
		BaseURL:     baseURL,
		Client:      &http.Client{},
		MetaTimeout: DefaultMetaTimeout,
		RunTimeout:  DefaultRunTimeout,
		Retry:       DefaultRetryPolicy,
	}
}

// CallError is a failed worker call with enough structure for the retry
// layer to classify it. Status 0 means the request never produced an HTTP
// response (transport failure or timeout).
type CallError struct {
	Worker  string
	Status  int
	Timeout bool
	Msg     string // worker-supplied error body, when present
	Err     error
}

func (e *CallError) Error() string {
	switch {
	case e.Timeout:
		return fmt.Sprintf("federation: worker %s: %s", e.Worker, e.Msg)
	case e.Status != 0:
		return fmt.Sprintf("federation: worker %s: HTTP %d: %s", e.Worker, e.Status, e.Msg)
	default:
		return fmt.Sprintf("federation: worker %s: %v", e.Worker, e.Err)
	}
}

func (e *CallError) Unwrap() error { return e.Err }

// Temporary reports whether the call is worth replaying: transport
// failures, timeouts, 429s and 5xx responses are; 4xx worker verdicts
// (bad request, disclosure control, unknown step) are final.
func (e *CallError) Temporary() bool {
	return e.Status == 0 || e.Timeout || e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// ID implements WorkerClient.
func (c *HTTPWorkerClient) ID() string { return c.WorkerID }

func (c *HTTPWorkerClient) metaTimeout() time.Duration {
	if c.MetaTimeout > 0 {
		return c.MetaTimeout
	}
	return DefaultMetaTimeout
}

func (c *HTTPWorkerClient) runTimeout() time.Duration {
	if c.RunTimeout > 0 {
		return c.RunTimeout
	}
	return DefaultRunTimeout
}

func (c *HTTPWorkerClient) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// do issues one request with a deadline and decodes the JSON response,
// surfacing worker-side error bodies as `worker <id>: HTTP <code>: <msg>`
// instead of opaque transport errors.
func (c *HTTPWorkerClient) do(method, path string, timeout time.Duration, trace *obs.TraceRef, in, out any) error {
	return c.doCtx(context.Background(), method, path, timeout, trace, in, out)
}

// doCtx is do under a caller context: cancelling it aborts the in-flight
// request, which the worker server sees as its request context dying.
func (c *HTTPWorkerClient) doCtx(parent context.Context, method, path string, timeout time.Duration, trace *obs.TraceRef, in, out any) error {
	var body io.Reader
	var sent int
	if in != nil {
		enc, err := json.Marshal(in)
		if err != nil {
			return err
		}
		sent = len(enc)
		body = bytes.NewReader(enc)
	}
	ctx, cancel := context.WithTimeout(parent, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace != nil {
		req.Header.Set(obs.TraceHeader, trace.String())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() == context.DeadlineExceeded {
			return &CallError{Worker: c.WorkerID, Timeout: true,
				Msg: fmt.Sprintf("%s timed out after %s", path, timeout), Err: err}
		}
		return &CallError{Worker: c.WorkerID, Err: err}
	}
	defer resp.Body.Close()
	fedBytesSent.Add(int64(sent))
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return &CallError{Worker: c.WorkerID, Err: fmt.Errorf("reading response: %w", err)}
	}
	fedBytesRecv.Add(int64(len(data)))
	if resp.StatusCode != http.StatusOK {
		msg := truncate(string(data), 200)
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &CallError{Worker: c.WorkerID, Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// truncate caps s at n bytes without splitting a multi-byte UTF-8 rune
// (worker error bodies may carry non-ASCII dataset or column names).
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	return s[:n] + "…"
}

// Datasets implements WorkerClient. Idempotent: retried under Retry.
func (c *HTTPWorkerClient) Datasets() ([]string, error) {
	info, err := c.DatasetInfo()
	if err != nil {
		return nil, err
	}
	return info.Datasets, nil
}

// DatasetInfo implements the master's versioned-client interface over the
// /datasets endpoint (the version fields are additive JSON). Idempotent:
// retried under Retry.
func (c *HTTPWorkerClient) DatasetInfo() (DatasetInfo, error) {
	var out DatasetInfo
	err := c.Retry.run(c.WorkerID, func() error {
		return c.do(http.MethodGet, "/datasets", c.metaTimeout(), nil, nil, &out)
	})
	if err != nil {
		return DatasetInfo{}, err
	}
	return out, nil
}

// DataStamp implements the versioned-client probe against GET /datastamp.
// A worker predating the endpoint returns an error, which the result cache
// treats as "bypass caching for this worker".
func (c *HTTPWorkerClient) DataStamp() (string, error) {
	var out struct {
		Stamp string `json:"stamp"`
	}
	err := c.Retry.run(c.WorkerID, func() error {
		return c.do(http.MethodGet, "/datastamp", c.metaTimeout(), nil, nil, &out)
	})
	if err != nil {
		return "", err
	}
	return out.Stamp, nil
}

// Health fetches the worker's /healthz document. Idempotent: retried.
func (c *HTTPWorkerClient) Health() (map[string]any, error) {
	var out map[string]any
	err := c.Retry.run(c.WorkerID, func() error {
		return c.do(http.MethodGet, "/healthz", c.metaTimeout(), nil, nil, &out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LocalRun implements WorkerClient. Replays are safe because workers
// dedupe /localrun by JobID, so transient failures are retried.
func (c *HTTPWorkerClient) LocalRun(req LocalRunRequest) (LocalRunResponse, error) {
	var resp LocalRunResponse
	err := c.Retry.run(c.WorkerID, func() error {
		return c.do(http.MethodPost, "/localrun", c.runTimeout(), req.Trace, req, &resp)
	})
	return resp, err
}

// CancelJob implements the master's optional job-canceller interface: POST
// /cancel aborts the named step on the worker. Returns whether the worker
// found a live job to cancel.
func (c *HTTPWorkerClient) CancelJob(jobID string) bool {
	var out struct {
		Cancelled bool `json:"cancelled"`
	}
	if err := c.do(http.MethodPost, "/cancel", c.metaTimeout(), nil, map[string]string{"job_id": jobID}, &out); err != nil {
		return false
	}
	return out.Cancelled
}

// Query implements WorkerClient.
func (c *HTTPWorkerClient) Query(sql string) (*engine.Table, error) {
	return c.QueryCtx(context.Background(), sql)
}

// QueryCtx implements the master's optional context-aware query interface:
// cancelling the context tears down the HTTP request, which cancels the
// worker-side engine execution through the server's request context.
func (c *HTTPWorkerClient) QueryCtx(ctx context.Context, sql string) (*engine.Table, error) {
	var wt WireTable
	if err := c.doCtx(ctx, http.MethodPost, "/query", c.runTimeout(), nil, map[string]string{"sql": sql}, &wt); err != nil {
		return nil, err
	}
	return DecodeTable(&wt)
}
