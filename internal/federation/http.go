package federation

import (
	"mip/internal/engine"

	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The HTTP transport lets a Master drive Workers living in other processes
// or hosts, mirroring the paper's deployment where nodes talk through REST
// and message queues. Endpoints:
//
//	POST /localrun  — execute a local step (LocalRunRequest → LocalRunResponse)
//	POST /query     — run SQL against the worker engine (non-sensitive mode)
//	GET  /datasets  — list hosted datasets
//	GET  /healthz   — liveness
//
// Payloads are JSON; tables travel as WireTable.

// WorkerServer exposes a Worker over HTTP.
type WorkerServer struct {
	Worker *Worker
	// AllowRawQuery enables the /query endpoint (the remote-table path).
	// Production privacy-sensitive deployments leave it off: "the databases
	// are not explorable by users".
	AllowRawQuery bool
}

// Handler returns the server's HTTP mux.
func (s *WorkerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /localrun", s.handleLocalRun)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "worker": s.Worker.ID()})
	})
	return mux
}

func (s *WorkerServer) handleLocalRun(w http.ResponseWriter, r *http.Request) {
	var req LocalRunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.Worker.LocalRun(req)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *WorkerServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.AllowRawQuery {
		writeJSON(w, http.StatusForbidden, map[string]string{"error": "raw queries disabled on this worker"})
		return
	}
	var req struct {
		SQL string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	t, err := s.Worker.Query(req.SQL)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, EncodeTable(t))
}

func (s *WorkerServer) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	ds, err := s.Worker.Datasets()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"datasets": ds})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// HTTPWorkerClient implements WorkerClient against a remote WorkerServer.
type HTTPWorkerClient struct {
	WorkerID string
	BaseURL  string
	Client   *http.Client
}

// NewHTTPWorkerClient dials a worker's base URL (e.g. http://host:port).
func NewHTTPWorkerClient(id, baseURL string) *HTTPWorkerClient {
	return &HTTPWorkerClient{
		WorkerID: id,
		BaseURL:  baseURL,
		Client:   &http.Client{Timeout: 120 * time.Second},
	}
}

// ID implements WorkerClient.
func (c *HTTPWorkerClient) ID() string { return c.WorkerID }

func (c *HTTPWorkerClient) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.Client.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("federation: worker %s: %w", c.WorkerID, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("federation: worker %s: %s", c.WorkerID, e.Error)
		}
		return fmt.Errorf("federation: worker %s: HTTP %d", c.WorkerID, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}

// Datasets implements WorkerClient.
func (c *HTTPWorkerClient) Datasets() ([]string, error) {
	resp, err := c.Client.Get(c.BaseURL + "/datasets")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// LocalRun implements WorkerClient.
func (c *HTTPWorkerClient) LocalRun(req LocalRunRequest) (LocalRunResponse, error) {
	var resp LocalRunResponse
	err := c.post("/localrun", req, &resp)
	return resp, err
}

// Query implements WorkerClient.
func (c *HTTPWorkerClient) Query(sql string) (*engine.Table, error) {
	var wt WireTable
	if err := c.post("/query", map[string]string{"sql": sql}, &wt); err != nil {
		return nil, err
	}
	return DecodeTable(&wt)
}
