package federation

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"mip/internal/obs"
)

// A federated step's trace must contain each worker's per-operator
// breakdown: the engine plan nodes grafted as "op ..." spans under that
// worker's engine-query span, surviving the HTTP hop.
func TestTraceContainsPerWorkerOperatorSpans(t *testing.T) {
	var clients []WorkerClient
	for i := 0; i < 2; i++ {
		db := newWorkerDB(t, "edsd", 40, float64(i))
		w := NewWorker(fmt.Sprintf("oph%d", i), db)
		srv := httptest.NewServer((&WorkerServer{Worker: w}).Handler())
		t.Cleanup(srv.Close)
		clients = append(clients, NewHTTPWorkerClient(w.ID(), srv.URL))
	}
	m, err := NewMaster(clients, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession([]string{"edsd"})
	if err != nil {
		t.Fatal(err)
	}

	const traceID = "trace-operator-test"
	root := obs.DefaultTraces.StartSpan(traceID, "", "experiment test")
	s.SetTrace(obs.TraceRef{TraceID: traceID, SpanID: root.ID()})
	if _, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := obs.DefaultTraces.Tree(traceID)
	nodes := map[string]*obs.SpanNode{}
	collectNames(tree, nodes)
	for i := 0; i < 2; i++ {
		wn := nodes[fmt.Sprintf("worker oph%d", i)]
		if wn == nil {
			t.Fatalf("missing worker oph%d span; have %v", i, keys(nodes))
		}
		// Find this worker's engine-query span and its operator children.
		var query *obs.SpanNode
		var find func(n *obs.SpanNode)
		find = func(n *obs.SpanNode) {
			if n.Name == "engine query" {
				query = n
			}
			for _, c := range n.Children {
				find(c)
			}
		}
		find(wn)
		if query == nil {
			t.Fatalf("worker oph%d has no engine query span", i)
		}
		ops := map[string]*obs.SpanNode{}
		var collectOps func(n *obs.SpanNode)
		collectOps = func(n *obs.SpanNode) {
			if strings.HasPrefix(n.Name, "op ") {
				ops[n.Attrs["op"]] = n
			}
			for _, c := range n.Children {
				collectOps(c)
			}
		}
		collectOps(query)
		if len(ops) == 0 {
			t.Fatalf("worker oph%d engine query has no operator spans: %+v", i, query.Children)
		}
		scan := ops["scan"]
		if scan == nil {
			t.Fatalf("worker oph%d operator spans missing scan: %v", i, ops)
		}
		if scan.Attrs["rows_out"] != "40" {
			t.Errorf("worker oph%d scan rows_out = %q, want 40", i, scan.Attrs["rows_out"])
		}
		if scan.Attrs["bytes"] == "" || scan.Attrs["bytes"] == "0" {
			t.Errorf("worker oph%d scan bytes attr = %q, want > 0", i, scan.Attrs["bytes"])
		}
		if ops["project"] == nil {
			t.Errorf("worker oph%d operator spans missing project: %v", i, ops)
		}
	}
}

// Master.Explain plans a federated aggregate over the workers' merge view.
func TestMasterExplain(t *testing.T) {
	var clients []WorkerClient
	for i := 0; i < 2; i++ {
		db := newWorkerDB(t, "edsd", 30, float64(i))
		clients = append(clients, NewWorker(fmt.Sprintf("exh%d", i), db))
	}
	m, err := NewMaster(clients, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}

	lines, err := m.Explain([]string{"edsd"}, "SELECT avg(age) AS m FROM data", false)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "merge pushdown data") {
		t.Errorf("plan shape missing pushdown merge node:\n%s", joined)
	}
	for i := 0; i < 2; i++ {
		if !strings.Contains(joined, fmt.Sprintf("part exh%d", i)) {
			t.Errorf("plan missing part exh%d:\n%s", i, joined)
		}
	}

	analyzed, err := m.Explain([]string{"edsd"}, "SELECT avg(age) AS m FROM data", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(analyzed, "\n"), "rows_out=") {
		t.Errorf("analyzed plan missing measured stats:\n%s", strings.Join(analyzed, "\n"))
	}

	if _, err := m.Explain([]string{"nope"}, "SELECT avg(age) AS m FROM data", false); err == nil {
		t.Error("Explain over unknown dataset should fail")
	}
}
