package obs

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Exposition must be self-consistent while observations land concurrently:
// cumulative buckets never decrease across bounds, and the +Inf bucket
// equals _count exactly — both come from the same single pass, never from
// the separately updated count atomic. Run with -race.
func TestHistogramExpositionConsistentUnderConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("consistency_seconds", "test histogram", nil)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := []float64{0.0002, 0.003, 0.04, 0.7, 20}
			for i := 0; !stop.Load(); i++ {
				h.Observe(vals[(i+g)%len(vals)])
			}
		}(g)
	}

	for iter := 0; iter < 200; iter++ {
		var buf strings.Builder
		reg.WritePrometheus(&buf)
		var prev uint64
		var inf, count uint64
		var sawInf, sawCount bool
		for _, line := range strings.Split(buf.String(), "\n") {
			switch {
			case strings.HasPrefix(line, "consistency_seconds_bucket"):
				v := parseLineValue(t, line)
				if v < prev {
					t.Fatalf("cumulative bucket decreased: %d after %d in %q", v, prev, line)
				}
				prev = v
				if strings.Contains(line, `le="+Inf"`) {
					inf, sawInf = v, true
				}
			case strings.HasPrefix(line, "consistency_seconds_count"):
				count, sawCount = parseLineValue(t, line), true
			}
		}
		if !sawInf || !sawCount {
			t.Fatalf("exposition missing +Inf bucket or _count:\n%s", buf.String())
		}
		if inf != count {
			t.Fatalf("iteration %d: _count %d != +Inf bucket %d under concurrent observe", iter, count, inf)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent: the one-pass total converges with the count atomic.
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "consistency_seconds_count") {
			if got := parseLineValue(t, line); got != h.Count() {
				t.Fatalf("quiescent _count = %d, Histogram.Count() = %d", got, h.Count())
			}
		}
	}

	// Snapshot totals are the same single pass the exposition uses.
	cum := h.Snapshot()
	if cum[len(cum)-1] != h.Count() {
		t.Fatalf("Snapshot total %d != Count %d at rest", cum[len(cum)-1], h.Count())
	}
}

func parseLineValue(t *testing.T, line string) uint64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("unparseable metric line %q", line)
	}
	v, err := strconv.ParseUint(line[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("unparseable value in %q: %v", line, err)
	}
	return v
}
