package obs

import (
	"sort"
	"sync"
	"time"
)

const (
	// TenantUntagged buckets work that carried no tenant attribution
	// (boot-time catalogue scans, raw worker /query calls, untagged API use).
	TenantUntagged = "(untagged)"
	// TenantOverflow absorbs tenants beyond the cardinality cap so a
	// misbehaving client minting tenant ids cannot grow memory or the
	// metric namespace without bound.
	TenantOverflow = "(overflow)"
	// maxTenants caps distinct tenant accounts (and their labeled series).
	maxTenants = 256
)

// UsageDelta is one increment folded into a tenant's account — typically
// a single finished statement (Queries=1 plus its QueryStats) or a single
// finished experiment.
type UsageDelta struct {
	Queries          int64
	Errors           int64 // statements ending in a non-completed verdict
	RowsIn           int64 // rows scanned
	RowsOut          int64 // result rows
	RowsShipped      int64 // rows pulled from federated parts
	BytesShipped     int64
	MemPeakBytes     int64 // statement peak; account keeps the max
	Seconds          float64
	Verdict          string
	Experiments      int64
	ExperimentErrors int64
	Degraded         int64 // experiments that completed degraded
}

// TenantUsage is the JSON snapshot of one tenant's cumulative account plus
// its live SLO windows, as served by GET /tenants.
type TenantUsage struct {
	Tenant              string                 `json:"tenant"`
	Queries             int64                  `json:"queries"`
	QueryErrors         int64                  `json:"query_errors"`
	Experiments         int64                  `json:"experiments"`
	ExperimentErrors    int64                  `json:"experiment_errors,omitempty"`
	DegradedExperiments int64                  `json:"degraded_experiments,omitempty"`
	RowsIn              int64                  `json:"rows_in"`
	RowsOut             int64                  `json:"rows_out"`
	RowsShipped         int64                  `json:"rows_shipped"`
	BytesShipped        int64                  `json:"bytes_shipped"`
	Seconds             float64                `json:"seconds"`
	MemPeakBytes        int64                  `json:"mem_peak_bytes"`
	Verdicts            map[string]int64       `json:"verdicts,omitempty"`
	FirstSeen           time.Time              `json:"first_seen"`
	LastSeen            time.Time              `json:"last_seen"`
	Windows             map[string]WindowStats `json:"windows"`
}

// tenantAccount is the live state behind one TenantUsage. Cumulative
// fields live under mu; the labeled registry counters are atomic and
// updated outside it.
type tenantAccount struct {
	mu       sync.Mutex
	u        TenantUsage // Verdicts/Windows unused here; see snapshot
	verdicts map[string]int64
	windows  []*slidingWindow

	cQueries, cErrors, cRowsShipped, cBytesShipped, cExperiments *Counter
	gSeconds                                                     *Gauge
}

// TenantMeter folds per-query and per-experiment usage into bounded
// per-tenant accounts, each with cumulative counters, labeled mip_tenant_*
// registry series, and sliding SLO windows. The clock is injectable so
// window rotation is testable.
type TenantMeter struct {
	reg      *Registry
	now      func() time.Time
	mu       sync.RWMutex
	accounts map[string]*tenantAccount
}

// NewTenantMeter returns a meter registering its series against reg and
// reading time from now.
func NewTenantMeter(reg *Registry, now func() time.Time) *TenantMeter {
	return &TenantMeter{reg: reg, now: now, accounts: make(map[string]*tenantAccount)}
}

// DefaultTenants is the process-wide meter the engine and api record into.
var DefaultTenants = NewTenantMeter(Default, time.Now)

func (m *TenantMeter) account(tenant string) *tenantAccount {
	if tenant == "" {
		tenant = TenantUntagged
	}
	m.mu.RLock()
	a := m.accounts[tenant]
	m.mu.RUnlock()
	if a != nil {
		return a
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if a = m.accounts[tenant]; a != nil {
		return a
	}
	if len(m.accounts) >= maxTenants && tenant != TenantOverflow {
		if a = m.accounts[TenantOverflow]; a != nil {
			return a
		}
		tenant = TenantOverflow
	}
	a = m.newAccount(tenant)
	m.accounts[tenant] = a
	return a
}

// newAccount builds the account and registers its labeled series. Called
// under m.mu so concurrent first touches observe one fully built account.
func (m *TenantMeter) newAccount(tenant string) *tenantAccount {
	now := m.now().UTC()
	a := &tenantAccount{verdicts: make(map[string]int64)}
	a.u.Tenant = tenant
	a.u.FirstSeen = now
	a.u.LastSeen = now
	lt := Label{"tenant", tenant}
	a.cQueries = m.reg.Counter("mip_tenant_queries_total",
		"Statements metered per tenant.", lt)
	a.cErrors = m.reg.Counter("mip_tenant_query_errors_total",
		"Statements per tenant ending in a non-completed verdict.", lt)
	a.cRowsShipped = m.reg.Counter("mip_tenant_rows_shipped_total",
		"Rows shipped from federated parts per tenant.", lt)
	a.cBytesShipped = m.reg.Counter("mip_tenant_bytes_shipped_total",
		"Bytes shipped from federated parts per tenant.", lt)
	a.cExperiments = m.reg.Counter("mip_tenant_experiments_total",
		"Experiments finished per tenant.", lt)
	a.gSeconds = m.reg.Gauge("mip_tenant_query_seconds_total",
		"Cumulative statement wall time per tenant.", lt)
	for _, spec := range DefaultWindows {
		w := newSlidingWindow(spec)
		a.windows = append(a.windows, w)
		lw := Label{"window", spec.Name}
		m.reg.GaugeFunc("mip_tenant_qps",
			"Tenant statements per second over the window.",
			func() float64 { return w.stats(m.now()).QPS }, lt, lw)
		m.reg.GaugeFunc("mip_tenant_error_rate",
			"Fraction of tenant statements failing over the window.",
			func() float64 { return w.stats(m.now()).ErrorRate }, lt, lw)
		m.reg.GaugeFunc("mip_tenant_p95_seconds",
			"Tenant p95 statement latency over the window.",
			func() float64 { return w.stats(m.now()).P95 }, lt, lw)
	}
	return a
}

// Record folds one delta into the tenant's account. Statement deltas
// (Queries > 0) also feed the tenant's SLO windows.
func (m *TenantMeter) Record(tenant string, d UsageDelta) {
	a := m.account(tenant)
	now := m.now()

	a.mu.Lock()
	a.u.Queries += d.Queries
	a.u.QueryErrors += d.Errors
	a.u.Experiments += d.Experiments
	a.u.ExperimentErrors += d.ExperimentErrors
	a.u.DegradedExperiments += d.Degraded
	a.u.RowsIn += d.RowsIn
	a.u.RowsOut += d.RowsOut
	a.u.RowsShipped += d.RowsShipped
	a.u.BytesShipped += d.BytesShipped
	a.u.Seconds += d.Seconds
	if d.MemPeakBytes > a.u.MemPeakBytes {
		a.u.MemPeakBytes = d.MemPeakBytes
	}
	if d.Verdict != "" {
		a.verdicts[d.Verdict]++
	}
	a.u.LastSeen = now.UTC()
	a.mu.Unlock()

	if d.Queries > 0 {
		for _, w := range a.windows {
			w.observe(now, d.Seconds, d.Errors > 0)
		}
	}
	a.cQueries.Add(d.Queries)
	a.cErrors.Add(d.Errors)
	a.cRowsShipped.Add(d.RowsShipped)
	a.cBytesShipped.Add(d.BytesShipped)
	a.cExperiments.Add(d.Experiments)
	if d.Seconds > 0 {
		a.gSeconds.Add(d.Seconds)
	}
}

func (a *tenantAccount) snapshot(now time.Time) TenantUsage {
	a.mu.Lock()
	u := a.u
	u.Verdicts = make(map[string]int64, len(a.verdicts))
	for k, v := range a.verdicts {
		u.Verdicts[k] = v
	}
	a.mu.Unlock()
	u.Windows = make(map[string]WindowStats, len(a.windows))
	for _, w := range a.windows {
		u.Windows[w.spec.Name] = w.stats(now)
	}
	return u
}

// Usage returns one tenant's snapshot.
func (m *TenantMeter) Usage(tenant string) (TenantUsage, bool) {
	m.mu.RLock()
	a := m.accounts[tenant]
	m.mu.RUnlock()
	if a == nil {
		return TenantUsage{}, false
	}
	return a.snapshot(m.now()), true
}

// Snapshot returns every tenant's usage, sorted by tenant name.
func (m *TenantMeter) Snapshot() []TenantUsage {
	m.mu.RLock()
	accounts := make([]*tenantAccount, 0, len(m.accounts))
	for _, a := range m.accounts {
		accounts = append(accounts, a)
	}
	m.mu.RUnlock()
	now := m.now()
	out := make([]TenantUsage, 0, len(accounts))
	for _, a := range accounts {
		out = append(out, a.snapshot(now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
