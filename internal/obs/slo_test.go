package obs

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for window tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// Observations must survive slot-boundary crossings: events spread over
// several slots all count while inside the window, then expire slot by
// slot as the clock advances past them.
func TestWindowRotationAcrossBucketBoundaries(t *testing.T) {
	clk := newFakeClock()
	w := newSlidingWindow(WindowSpec{Name: "1m", Width: time.Minute, Slots: 12}) // 5s slots

	// 3 events in three consecutive slots: t+0, t+5s, t+10s.
	for i := 0; i < 3; i++ {
		w.observe(clk.now(), 0.010, false)
		clk.advance(5 * time.Second)
	}
	// Clock is now at t+15s; all three slots are still inside the minute.
	st := w.stats(clk.now())
	if st.Count != 3 {
		t.Fatalf("count = %d after 3 observes across slot boundaries, want 3", st.Count)
	}
	if want := 3.0 / 60.0; math.Abs(st.QPS-want) > 1e-9 {
		t.Errorf("qps = %v, want %v", st.QPS, want)
	}

	// Advance so the first event (at t+0) falls out: window covers slots
	// (now-60s, now]; at t+62.5s the t+0 slot is expired, t+5s is not.
	clk.advance(47500 * time.Millisecond) // now t+62.5s
	st = w.stats(clk.now())
	if st.Count != 2 {
		t.Fatalf("count = %d after first slot expired, want 2", st.Count)
	}

	// 5s later the second event expires; only the t+10s slot remains.
	clk.advance(5 * time.Second) // now t+67.5s
	st = w.stats(clk.now())
	if st.Count != 1 {
		t.Fatalf("count = %d at t+67.5s, want 1", st.Count)
	}

	// And 5s after that the last one falls out too.
	clk.advance(5 * time.Second) // now t+72.5s
	st = w.stats(clk.now())
	if st.Count != 0 {
		t.Fatalf("count = %d at t+72.5s, want 0", st.Count)
	}
}

// A full wraparound (clock jumps more than a whole window) must expire
// every slot even though the ring indices collide with the old epochs.
func TestWindowFullWraparound(t *testing.T) {
	clk := newFakeClock()
	w := newSlidingWindow(WindowSpec{Name: "1m", Width: time.Minute, Slots: 12})

	for i := 0; i < 50; i++ {
		w.observe(clk.now(), 0.005, i%5 == 0)
		clk.advance(time.Second)
	}
	if st := w.stats(clk.now()); st.Count == 0 {
		t.Fatal("window empty right after 50 observations")
	}

	// Jump exactly N full windows ahead: same ring slots, stale epochs.
	clk.advance(3 * time.Minute)
	st := w.stats(clk.now())
	if st.Count != 0 || st.Errors != 0 || st.QPS != 0 {
		t.Fatalf("window not empty after wraparound: %+v", st)
	}

	// The ring must be immediately reusable after the jump.
	w.observe(clk.now(), 0.020, false)
	st = w.stats(clk.now())
	if st.Count != 1 {
		t.Fatalf("count = %d after post-wraparound observe, want 1", st.Count)
	}
}

// Quantiles interpolate within DefBuckets and clamp at the last finite
// bound for off-scale observations.
func TestWindowQuantiles(t *testing.T) {
	clk := newFakeClock()
	w := newSlidingWindow(WindowSpec{Name: "1m", Width: time.Minute, Slots: 12})

	// 90 fast observations (~1ms) and 10 slow (~1s): p50 lands in the
	// 0.0005–0.001 bucket, p95 and p99 in the 0.5–1 bucket.
	for i := 0; i < 90; i++ {
		w.observe(clk.now(), 0.0009, false)
	}
	for i := 0; i < 10; i++ {
		w.observe(clk.now(), 0.9, true)
	}
	st := w.stats(clk.now())
	if st.P50 < 0.0005 || st.P50 > 0.001 {
		t.Errorf("p50 = %v, want within (0.0005, 0.001]", st.P50)
	}
	if st.P95 < 0.5 || st.P95 > 1.0 {
		t.Errorf("p95 = %v, want within (0.5, 1]", st.P95)
	}
	if st.P99 < 0.5 || st.P99 > 1.0 {
		t.Errorf("p99 = %v, want within (0.5, 1]", st.P99)
	}
	if want := 0.1; math.Abs(st.ErrorRate-want) > 1e-9 {
		t.Errorf("error rate = %v, want %v", st.ErrorRate, want)
	}

	// Off-scale-high clamps to the last finite bound.
	w2 := newSlidingWindow(WindowSpec{Name: "1m", Width: time.Minute, Slots: 12})
	w2.observe(clk.now(), 100, false)
	if got := w2.stats(clk.now()).P99; got != DefBuckets[len(DefBuckets)-1] {
		t.Errorf("off-scale p99 = %v, want clamp to %v", got, DefBuckets[len(DefBuckets)-1])
	}

	// Empty window reports zeros.
	if st := newSlidingWindow(DefaultWindows[0]).stats(clk.now()); st != (WindowStats{}) {
		t.Errorf("empty window stats = %+v, want zero value", st)
	}
}
