package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Cumulative accounting: deltas fold into the right tenant, snapshots are
// sorted, and the labeled mip_tenant_* series appear in the registry.
func TestTenantMeterAccounting(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry()
	m := NewTenantMeter(reg, clk.now)

	for i := 0; i < 4; i++ {
		m.Record("alice", UsageDelta{
			Queries: 1, RowsIn: 1000, RowsOut: 10, RowsShipped: 100,
			BytesShipped: 4096, MemPeakBytes: int64(1000 + i), Seconds: 0.010,
			Verdict: "completed",
		})
	}
	m.Record("bob", UsageDelta{
		Queries: 1, Errors: 1, Seconds: 0.5, Verdict: "mem-limit",
	})
	m.Record("alice", UsageDelta{Experiments: 1, Degraded: 1, Seconds: 0.2})

	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Tenant != "alice" || snap[1].Tenant != "bob" {
		t.Fatalf("snapshot tenants = %+v, want [alice bob]", snap)
	}
	a := snap[0]
	if a.Queries != 4 || a.RowsIn != 4000 || a.RowsShipped != 400 || a.BytesShipped != 16384 {
		t.Errorf("alice cumulative off: %+v", a)
	}
	if a.MemPeakBytes != 1003 {
		t.Errorf("alice mem peak = %d, want max 1003", a.MemPeakBytes)
	}
	if a.Experiments != 1 || a.DegradedExperiments != 1 {
		t.Errorf("alice experiments = %d/%d, want 1/1", a.Experiments, a.DegradedExperiments)
	}
	if a.Verdicts["completed"] != 4 {
		t.Errorf("alice verdicts = %v", a.Verdicts)
	}
	if got := a.Windows["1m"]; got.Count != 4 {
		t.Errorf("alice 1m window count = %d, want 4 (experiment delta must not feed windows)", got.Count)
	}
	b := snap[1]
	if b.QueryErrors != 1 || b.Verdicts["mem-limit"] != 1 {
		t.Errorf("bob error accounting off: %+v", b)
	}
	if got := b.Windows["1m"]; got.ErrorRate != 1 {
		t.Errorf("bob 1m error rate = %v, want 1", got.ErrorRate)
	}

	if _, ok := m.Usage("nobody"); ok {
		t.Error("Usage invented an account for an unknown tenant")
	}
	u, ok := m.Usage("alice")
	if !ok || u.Queries != 4 {
		t.Errorf("Usage(alice) = %+v ok=%v", u, ok)
	}

	var buf strings.Builder
	reg.WritePrometheus(&buf)
	body := buf.String()
	for _, want := range []string{
		`mip_tenant_queries_total{tenant="alice"} 4`,
		`mip_tenant_bytes_shipped_total{tenant="alice"} 16384`,
		`mip_tenant_query_errors_total{tenant="bob"} 1`,
		`mip_tenant_experiments_total{tenant="alice"} 1`,
		`mip_tenant_qps{tenant="alice",window="1m"}`,
		`mip_tenant_p95_seconds{tenant="bob",window="5m"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// The empty tenant folds into TenantUntagged; tenants past the cap fold
// into TenantOverflow instead of growing the account map without bound.
func TestTenantMeterBoundedCardinality(t *testing.T) {
	clk := newFakeClock()
	m := NewTenantMeter(NewRegistry(), clk.now)

	m.Record("", UsageDelta{Queries: 1})
	if _, ok := m.Usage(TenantUntagged); !ok {
		t.Fatal("empty tenant not folded into the untagged account")
	}

	for i := 0; i < maxTenants+50; i++ {
		m.Record(fmt.Sprintf("tenant-%d", i), UsageDelta{Queries: 1})
	}
	snap := m.Snapshot()
	if len(snap) > maxTenants+1 {
		t.Fatalf("meter grew to %d accounts, cap is %d(+overflow)", len(snap), maxTenants)
	}
	over, ok := m.Usage(TenantOverflow)
	if !ok || over.Queries == 0 {
		t.Fatalf("overflow account missing or empty: %+v ok=%v", over, ok)
	}
}

// Concurrent recording across tenants must be race-free and lose nothing.
func TestTenantMeterConcurrent(t *testing.T) {
	clk := newFakeClock()
	m := NewTenantMeter(NewRegistry(), clk.now)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%2)
			for i := 0; i < 200; i++ {
				m.Record(tenant, UsageDelta{Queries: 1, Seconds: 0.001, Verdict: "completed"})
				_ = m.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, u := range m.Snapshot() {
		total += u.Queries
	}
	if total != 1600 {
		t.Fatalf("recorded %d queries total, want 1600", total)
	}
}
