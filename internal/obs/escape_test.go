package obs

import (
	"bytes"
	"strings"
	"testing"
)

// unescapeLabel inverts the Prometheus text-format label escapes, the way
// a conforming scraper would when parsing the exposition.
func unescapeLabel(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' || i+1 == len(v) {
			b.WriteByte(v[i])
			continue
		}
		i++
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default: // not an escape we emit; keep both bytes
			b.WriteByte('\\')
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// TestPrometheusLabelEscapeRoundTrip renders metrics whose label values
// contain every character the text format escapes (backslash, double
// quote, newline) and checks a scrape-side unescape recovers the original
// values exactly, with each escape applied in the right order (backslash
// first, so `\n` in the input survives as literal backslash-n).
func TestPrometheusLabelEscapeRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`back\slash`,
		`dou"ble`,
		"new\nline",
		`pre-escaped\n`, // literal backslash + n, NOT a newline
		"all\\of\"them\nat once",
		`trailing backslash\`,
	}

	r := NewRegistry()
	for i, v := range hostile {
		c := r.Counter("escape_total", "round-trip test", Label{Key: "sql", Value: v})
		c.Add(int64(i + 1))
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	exposition := buf.String()

	// Every sample must be a single line: raw newlines inside label values
	// would corrupt the format.
	var got []string
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, "escape_total{sql=\"") {
			continue
		}
		rest := strings.TrimPrefix(line, "escape_total{sql=\"")
		end := strings.LastIndex(rest, "\"}")
		if end < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		got = append(got, unescapeLabel(rest[:end]))
	}
	if len(got) != len(hostile) {
		t.Fatalf("found %d escape_total samples, want %d:\n%s", len(got), len(hostile), exposition)
	}
	for _, want := range hostile {
		found := false
		for _, g := range got {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("label value %q did not survive the exposition round-trip; got %q", want, got)
		}
	}
}
