package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// AuditRecord is one entry in the tamper-evident access trail: who touched
// which datasets, through what statement or experiment, with what outcome.
// Hash covers every other field (including Prev), so any in-place edit
// breaks the record's own hash, and any splice breaks the next record's
// Prev link. SQL text itself is never stored — only its digest — so the
// trail can be shipped to a less-trusted sink without leaking query shapes.
type AuditRecord struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"` // "query", "experiment" or "cache-flush"
	Tenant    string    `json:"tenant,omitempty"`
	Job       string    `json:"job,omitempty"`
	QueryID   string    `json:"query_id,omitempty"`
	SQLDigest string    `json:"sql_digest,omitempty"`
	Datasets  []string  `json:"datasets,omitempty"`
	Workers   []string  `json:"workers,omitempty"`
	Dropped   []string  `json:"dropped_workers,omitempty"`
	Verdict   string    `json:"verdict,omitempty"`
	Seconds   float64   `json:"seconds"`
	Rows      int64     `json:"rows,omitempty"`
	Prev      string    `json:"prev"`
	Hash      string    `json:"hash"`
}

// SQLDigest returns a short stable digest of a statement's text, suitable
// for joining audit entries against the slow-query log without exposing
// the SQL itself.
func SQLDigest(sql string) string {
	h := sha256.Sum256([]byte(sql))
	return hex.EncodeToString(h[:8])
}

// chainPayload renders every hash-covered field with length prefixes, so
// no choice of tenant/dataset strings can collide with another record's
// encoding. Time is folded in as UnixNano, which survives the JSON
// round-trip through a JSONL sink.
func (r *AuditRecord) chainPayload() []byte {
	b := make([]byte, 0, 256)
	field := func(s string) {
		b = strconv.AppendInt(b, int64(len(s)), 10)
		b = append(b, ':')
		b = append(b, s...)
		b = append(b, ';')
	}
	list := func(ss []string) {
		b = strconv.AppendInt(b, int64(len(ss)), 10)
		b = append(b, '[')
		for _, s := range ss {
			field(s)
		}
		b = append(b, ']')
	}
	field(r.Prev)
	field(strconv.FormatUint(r.Seq, 10))
	field(strconv.FormatInt(r.Time.UnixNano(), 10))
	field(r.Kind)
	field(r.Tenant)
	field(r.Job)
	field(r.QueryID)
	field(r.SQLDigest)
	list(r.Datasets)
	list(r.Workers)
	list(r.Dropped)
	field(r.Verdict)
	field(strconv.FormatUint(math.Float64bits(r.Seconds), 16))
	field(strconv.FormatInt(r.Rows, 10))
	return b
}

func (r *AuditRecord) chainHash() string {
	h := sha256.Sum256(r.chainPayload())
	return hex.EncodeToString(h[:])
}

// AuditFilter selects a slice of the trail. Zero fields match everything;
// Limit keeps only the newest Limit matches (still in chain order).
type AuditFilter struct {
	Tenant  string
	Dataset string
	Kind    string
	Since   time.Time
	Until   time.Time
	Limit   int
}

func (f AuditFilter) matches(r AuditRecord) bool {
	if f.Tenant != "" && r.Tenant != f.Tenant {
		return false
	}
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	if !f.Since.IsZero() && r.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && r.Time.After(f.Until) {
		return false
	}
	if f.Dataset != "" {
		found := false
		for _, d := range r.Datasets {
			if d == f.Dataset {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// AuditLog is an append-only hash chain over a bounded in-memory ring,
// with an optional line-per-record JSON sink for durable trails. The ring
// evicts oldest-first, but eviction never breaks verifiability: the chain
// head lives in the log, and the retained suffix still links record to
// record.
type AuditLog struct {
	mu   sync.Mutex
	buf  []AuditRecord
	next int // ring index the next record lands in
	n    int // records currently retained
	seq  uint64
	last string // hash of the most recently appended record
	sink io.Writer
	now  func() time.Time
}

// NewAuditLog returns a log retaining up to capacity records in memory.
func NewAuditLog(capacity int) *AuditLog {
	if capacity < 1 {
		capacity = 1
	}
	return &AuditLog{buf: make([]AuditRecord, capacity), now: time.Now}
}

// DefaultAudit is the process-wide audit trail the engine and api append to.
var DefaultAudit = NewAuditLog(4096)

var (
	auditRecords = GetCounter("mip_audit_records_total",
		"Audit records appended to the hash chain.")
	auditSinkErrors = GetCounter("mip_audit_sink_errors_total",
		"Failed writes to the audit JSONL sink.")
)

// SetSink directs a copy of every appended record, as one JSON line, to w.
// Pass nil to detach. Writes happen under the log's lock so the file
// preserves chain order.
func (l *AuditLog) SetSink(w io.Writer) {
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// SetClock replaces the timestamp source (tests).
func (l *AuditLog) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Append seals r onto the chain: it assigns the next sequence number and
// timestamp, links Prev to the current head, computes the record hash, and
// stores the result. The sealed record is returned.
func (l *AuditLog) Append(r AuditRecord) AuditRecord {
	r.Datasets = append([]string(nil), r.Datasets...)
	r.Workers = append([]string(nil), r.Workers...)
	r.Dropped = append([]string(nil), r.Dropped...)

	l.mu.Lock()
	l.seq++
	r.Seq = l.seq
	r.Time = l.now().UTC()
	r.Prev = l.last
	r.Hash = r.chainHash()
	l.last = r.Hash
	l.buf[l.next] = r
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	if l.sink != nil {
		line, err := json.Marshal(r)
		if err == nil {
			_, err = l.sink.Write(append(line, '\n'))
		}
		if err != nil {
			auditSinkErrors.Inc()
		}
	}
	l.mu.Unlock()
	auditRecords.Inc()
	return r
}

// Entries returns the retained records matching f, oldest first (chain
// order, so the result feeds straight into VerifyChain when unfiltered).
func (l *AuditLog) Entries(f AuditFilter) []AuditRecord {
	l.mu.Lock()
	out := make([]AuditRecord, 0, l.n)
	start := l.next - l.n
	for i := 0; i < l.n; i++ {
		r := l.buf[(start+i+len(l.buf))%len(l.buf)]
		if f.matches(r) {
			out = append(out, r)
		}
	}
	l.mu.Unlock()
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Len returns the number of retained records.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Head returns the chain head: the sequence number and hash of the most
// recent record ("" and 0 for an empty log).
func (l *AuditLog) Head() (seq uint64, hash string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.last
}

// Verify checks the retained suffix of the chain.
func (l *AuditLog) Verify() error {
	return VerifyChain(l.Entries(AuditFilter{}))
}

// VerifyChain checks a contiguous run of audit records: every record must
// hash to its stored Hash, and every adjacent pair must link by Prev and
// advance Seq by exactly one. The first record's Prev is accepted as-is,
// because ring eviction (or a truncated JSONL file) can legitimately start
// the run mid-chain. Works on records read back from a JSONL sink.
func VerifyChain(records []AuditRecord) error {
	for i := range records {
		r := &records[i]
		if got := r.chainHash(); got != r.Hash {
			return fmt.Errorf("audit: record seq=%d fails its own hash (index %d): chain broken", r.Seq, i)
		}
		if i == 0 {
			continue
		}
		prev := &records[i-1]
		if r.Prev != prev.Hash {
			return fmt.Errorf("audit: record seq=%d prev-hash does not link to seq=%d", r.Seq, prev.Seq)
		}
		if r.Seq != prev.Seq+1 {
			return fmt.Errorf("audit: sequence gap between seq=%d and seq=%d", prev.Seq, r.Seq)
		}
	}
	return nil
}
