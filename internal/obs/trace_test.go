package obs

import (
	"errors"
	"fmt"
	"testing"
)

func TestSpanTree(t *testing.T) {
	ts := NewTraceStore(16)
	root := ts.StartSpan("exp-1", "", "experiment")
	child := root.StartChild("step")
	grand := child.StartChild("worker")
	grand.SetAttr("rows", "10")
	grand.End()
	child.End()
	root.SetError(errors.New("boom"))
	root.End()

	tree := ts.Tree("exp-1")
	if len(tree) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree))
	}
	r := tree[0]
	if r.Name != "experiment" || r.Err != "boom" {
		t.Fatalf("bad root: %+v", r.SpanData)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "step" {
		t.Fatalf("bad children: %+v", r.Children)
	}
	g := r.Children[0].Children
	if len(g) != 1 || g[0].Name != "worker" || g[0].Attrs["rows"] != "10" {
		t.Fatalf("bad grandchildren: %+v", g)
	}
}

func TestNilSpanSafe(t *testing.T) {
	ts := NewTraceStore(16)
	s := ts.StartSpan("", "", "ignored") // empty trace id disables tracing
	if s != nil {
		t.Fatal("empty trace id should return nil span")
	}
	// All of these must be no-ops, not panics.
	s.SetAttr("k", "v")
	s.SetError(errors.New("x"))
	c := s.StartChild("child")
	if c != nil {
		t.Fatal("child of nil span should be nil")
	}
	s.End()
	if got := s.ID(); got != "" {
		t.Fatalf("nil span ID = %q", got)
	}
	if s.Ref() != nil {
		t.Fatal("nil span Ref should be nil")
	}
}

func TestImportDedup(t *testing.T) {
	ts := NewTraceStore(16)
	root := ts.StartSpan("exp-2", "", "experiment")
	root.End()
	// Re-importing the same span (the in-process worker publishes locally
	// AND ships spans back in the response envelope) must not duplicate.
	ts.Import([]SpanData{root.Data(), root.Data()})
	if n := len(ts.Spans("exp-2")); n != 1 {
		t.Fatalf("spans after duplicate import = %d, want 1", n)
	}
}

func TestImportForeignSpans(t *testing.T) {
	ts := NewTraceStore(16)
	root := ts.StartSpan("exp-3", "", "experiment")
	root.End()
	remote := SpanData{TraceID: "exp-3", SpanID: "beef-000001", Parent: root.ID(), Name: "exec step"}
	ts.Import([]SpanData{remote})
	tree := ts.Tree("exp-3")
	if len(tree) != 1 || len(tree[0].Children) != 1 || tree[0].Children[0].Name != "exec step" {
		t.Fatalf("imported span not grafted under root: %+v", tree)
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2)
	for i := 0; i < 3; i++ {
		s := ts.StartSpan(fmt.Sprintf("exp-%d", i), "", "experiment")
		s.End()
	}
	if got := ts.Spans("exp-0"); got != nil {
		t.Fatalf("oldest trace should be evicted, got %v", got)
	}
	if got := ts.Spans("exp-2"); len(got) != 1 {
		t.Fatalf("newest trace missing: %v", got)
	}
}

func TestParseTraceRef(t *testing.T) {
	ref, ok := ParseTraceRef("exp-1/abcd-000001")
	if !ok || ref.TraceID != "exp-1" || ref.SpanID != "abcd-000001" {
		t.Fatalf("parse = %+v ok=%v", ref, ok)
	}
	if _, ok := ParseTraceRef("garbage"); ok {
		t.Fatal("malformed ref should not parse")
	}
	if got := ref.String(); got != "exp-1/abcd-000001" {
		t.Fatalf("round trip = %q", got)
	}
}
