package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync"
)

// Structured logging for every MIP process. Loggers are slog.Loggers whose
// records flow through a process-wide swappable sink (JSON to stderr by
// default), so tests and embedders can redirect or silence all components
// at once without re-plumbing logger instances.

var logSink struct {
	mu sync.RWMutex
	h  slog.Handler
}

func init() {
	logSink.h = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})
}

// SetLogOutput points every obs logger at w with the given minimum level.
// Pass io.Discard to silence logs (e.g. in benchmarks).
func SetLogOutput(w io.Writer, level slog.Level) {
	logSink.mu.Lock()
	defer logSink.mu.Unlock()
	logSink.h = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
}

func currentHandler() slog.Handler {
	logSink.mu.RLock()
	defer logSink.mu.RUnlock()
	return logSink.h
}

// dynamicHandler defers to the sink's handler at Handle time, so loggers
// created before SetLogOutput still honor the swap. Accumulated attrs are
// replayed onto the current handler per record; groups are not used by MIP
// loggers and are folded in before attrs, which is exact for our usage.
type dynamicHandler struct {
	attrs  []slog.Attr
	groups []string
}

func (d *dynamicHandler) resolved() slog.Handler {
	h := currentHandler()
	for _, g := range d.groups {
		h = h.WithGroup(g)
	}
	if len(d.attrs) > 0 {
		h = h.WithAttrs(d.attrs)
	}
	return h
}

func (d *dynamicHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return currentHandler().Enabled(ctx, level)
}

func (d *dynamicHandler) Handle(ctx context.Context, r slog.Record) error {
	return d.resolved().Handle(ctx, r)
}

func (d *dynamicHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nd := &dynamicHandler{groups: d.groups}
	nd.attrs = append(append(nd.attrs, d.attrs...), attrs...)
	return nd
}

func (d *dynamicHandler) WithGroup(name string) slog.Handler {
	nd := &dynamicHandler{attrs: d.attrs}
	nd.groups = append(append(nd.groups, d.groups...), name)
	return nd
}

// Logger returns a structured logger tagged with the component emitting the
// records ("master", "worker", "api", "engine", …).
func Logger(component string) *slog.Logger {
	return slog.New(&dynamicHandler{}).With("component", component)
}

// WithTrace returns l carrying the trace correlation ids, so log lines can
// be joined against the experiment trace they were emitted under. A nil ref
// returns l unchanged.
func WithTrace(l *slog.Logger, ref *TraceRef) *slog.Logger {
	if ref == nil {
		return l
	}
	return l.With("trace_id", ref.TraceID, "span_id", ref.SpanID)
}
