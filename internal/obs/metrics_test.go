package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	c.Add(-5) // counters must not go backwards
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter after negative Add = %d, want 8000", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Inc()
			}
			for j := 0; j < 200; j++ {
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 1200 {
		t.Fatalf("gauge = %v, want 1200", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				h.Observe(0.05) // bucket le=0.1
				h.Observe(0.5)  // bucket le=1
				h.Observe(5)    // bucket le=10
				h.Observe(50)   // +Inf only
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
	wantSum := 1000 * (0.05 + 0.5 + 5 + 50)
	if got := h.Sum(); got < wantSum-0.001 || got > wantSum+0.001 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestSameSeriesSharedAcrossGets(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "help", Label{Key: "k", Value: "v"})
	b := r.Counter("shared_total", "help", Label{Key: "k", Value: "v"})
	if a != b {
		t.Fatal("same name+labels should return the same series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("increments must be visible through both handles")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mip_test_requests_total", "Requests.", Label{Key: "code", Value: "200"})
	c.Add(3)
	g := r.Gauge("mip_test_depth", "Depth.")
	g.Set(7)
	h := r.Histogram("mip_test_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.3)
	h.Observe(0.7)
	h.Observe(2)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP mip_test_requests_total Requests.",
		"# TYPE mip_test_requests_total counter",
		`mip_test_requests_total{code="200"} 3`,
		"# TYPE mip_test_depth gauge",
		"mip_test_depth 7",
		"# TYPE mip_test_seconds histogram",
		`mip_test_seconds_bucket{le="0.5"} 1`,
		`mip_test_seconds_bucket{le="1"} 2`,
		`mip_test_seconds_bucket{le="+Inf"} 3`,
		"mip_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.GaugeFunc("mip_test_dynamic", "Dynamic.", func() float64 { v++; return v })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "mip_test_dynamic 42") {
		t.Fatalf("gauge func not evaluated at write time:\n%s", sb.String())
	}
}

// TestConcurrentFirstAccessSameSeries races many goroutines to create the
// same series; all of them must observe one instance so no observation is
// lost (regression: series values used to be assigned outside family.mu).
func TestConcurrentFirstAccessSameSeries(t *testing.T) {
	r := NewRegistry()
	const n = 16
	counters := make([]*Counter, n)
	hists := make([]*Histogram, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.Counter("race_total", "h", Label{Key: "k", Value: "v"})
			counters[i].Inc()
			hists[i] = r.Histogram("race_seconds", "h", nil, Label{Key: "k", Value: "v"})
			hists[i].Observe(0.1)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if counters[i] != counters[0] {
			t.Fatal("concurrent first access returned distinct counters")
		}
		if hists[i] != hists[0] {
			t.Fatal("concurrent first access returned distinct histograms")
		}
	}
	if got := counters[0].Value(); got != n {
		t.Fatalf("counter = %d, want %d (observations lost)", got, n)
	}
	if got := hists[0].Count(); got != n {
		t.Fatalf("histogram count = %d, want %d (observations lost)", got, n)
	}
}

// TestKindMismatchPanics: re-registering a family under a different kind
// must fail loudly at registration, not nil-deref at exposition.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mixed_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter family did not panic")
		}
	}()
	r.Gauge("mixed_total", "h")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mip_test_esc_total", "h", Label{Key: "q", Value: `a"b\c` + "\n"})
	c.Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `q="a\"b\\c\n"`) {
		t.Fatalf("label value not escaped:\n%s", sb.String())
	}
}
