package obs

import (
	"runtime"
	"sync"
	"time"
)

// Process runtime gauges: goroutine count, heap usage, and GC activity.
// ReadMemStats stops the world, so readings are cached for a short TTL —
// scrapes hitting several gauges in one exposition pay for one read.

var registerRuntimeOnce sync.Once

// RegisterRuntimeMetrics installs the runtime gauges into the Default
// registry. Safe to call from multiple places; only the first call
// registers. MetricsHandler calls it, so any process serving /metrics
// exports these automatically.
func RegisterRuntimeMetrics() {
	registerRuntimeOnce.Do(func() {
		var mu sync.Mutex
		var ms runtime.MemStats
		var last time.Time
		read := func(f func(*runtime.MemStats) float64) float64 {
			mu.Lock()
			defer mu.Unlock()
			if time.Since(last) > time.Second {
				runtime.ReadMemStats(&ms)
				last = time.Now()
			}
			return f(&ms)
		}
		Default.GaugeFunc("mip_runtime_goroutines",
			"Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) })
		Default.GaugeFunc("mip_runtime_heap_alloc_bytes",
			"Bytes of allocated heap objects.",
			func() float64 {
				return read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) })
			})
		Default.GaugeFunc("mip_runtime_heap_sys_bytes",
			"Bytes of heap memory obtained from the OS.",
			func() float64 {
				return read(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) })
			})
		Default.GaugeFunc("mip_runtime_gc_pause_seconds_total",
			"Cumulative stop-the-world GC pause time in seconds.",
			func() float64 {
				return read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 })
			})
		Default.GaugeFunc("mip_runtime_gc_runs_total",
			"Completed GC cycles.",
			func() float64 {
				return read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) })
			})
	})
}
