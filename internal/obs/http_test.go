package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// Pin the full route→label table: known endpoints keep their own label,
// everything else is bounded to "/other".
func TestRouteLabelTable(t *testing.T) {
	cases := map[string]string{
		"/":                      "/",
		"":                       "/",
		"/healthz":               "/healthz",
		"/metrics":               "/metrics",
		"/pathologies":           "/pathologies",
		"/datasets":              "/datasets",
		"/workers":               "/workers",
		"/algorithms":            "/algorithms",
		"/algorithms/anova":      "/algorithms",
		"/experiments":           "/experiments",
		"/experiments/abc-123":   "/experiments",
		"/experiments/abc/trace": "/experiments",
		"/workflows":             "/workflows",
		"/workflows/w1/run":      "/workflows",
		"/localrun":              "/localrun",
		"/cancel":                "/cancel",
		"/query":                 "/query",
		"/tenants":               "/tenants",
		"/tenants/alice/usage":   "/tenants",
		"/audit":                 "/audit",
		"/queries/slow":          "/queries/slow",
		"/queries/explain":       "/queries/explain",
		"/queries/active":        "/queries/active",
		"/queries/42":            "/queries/{id}",
		"/queries/9000":          "/queries/{id}",
		"/queries":               "/other",
		"/queries/unknown":       "/other",
		"/queries/42/extra":      "/other",
		"/debug":                 "/debug",
		"/debug/pprof/heap":      "/debug",
		"/favicon.ico":           "/other",
		"/wp-admin":              "/other",
		"/.env":                  "/other",
		"/experimentsX":          "/other",
		"/QUERIES/slow":          "/other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// A handler panic must still decrement the in-flight gauge and count the
// request as a 500, then propagate so net/http's recovery applies.
func TestMiddlewarePanicRecordsServerError(t *testing.T) {
	h := Middleware("paniccomp", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	before := GetCounter("mip_http_requests_total", "HTTP requests served.",
		Label{"component", "paniccomp"},
		Label{"method", "GET"},
		Label{"route", "/healthz"},
		Label{"code", "500"},
	).Value()
	inFlightBefore := httpInFlight.Value()

	req := httptest.NewRequest("GET", "/healthz", nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("middleware swallowed the handler panic")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()

	after := GetCounter("mip_http_requests_total", "HTTP requests served.",
		Label{"component", "paniccomp"},
		Label{"method", "GET"},
		Label{"route", "/healthz"},
		Label{"code", "500"},
	).Value()
	if after != before+1 {
		t.Errorf("500 counter = %d, want %d", after, before+1)
	}
	if got := httpInFlight.Value(); got != inFlightBefore {
		t.Errorf("in-flight gauge = %v after panic, want %v", got, inFlightBefore)
	}
}

// A handler that already wrote a status keeps it even if it panics later.
func TestMiddlewarePanicAfterWriteKeepsStatus(t *testing.T) {
	h := Middleware("paniccomp2", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		panic("after write")
	}))
	req := httptest.NewRequest("GET", "/metrics", nil)
	func() {
		defer func() { recover() }()
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	got := GetCounter("mip_http_requests_total", "HTTP requests served.",
		Label{"component", "paniccomp2"},
		Label{"method", "GET"},
		Label{"route", "/metrics"},
		Label{"code", "418"},
	).Value()
	if got != 1 {
		t.Errorf("418 counter = %d, want 1", got)
	}
}

func TestMetricsHandlerExportsRuntimeGauges(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{
		"mip_runtime_goroutines",
		"mip_runtime_heap_alloc_bytes",
		"mip_runtime_gc_pause_seconds_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// Logger output is JSON carrying component and, via WithTrace, the
// trace/span correlation ids; SetLogOutput redirects already-built loggers.
func TestLoggerTraceCorrelation(t *testing.T) {
	l := Logger("testcomp")

	var buf bytes.Buffer
	SetLogOutput(&buf, slog.LevelDebug)
	defer SetLogOutput(os.Stderr, slog.LevelInfo)

	WithTrace(l, &TraceRef{TraceID: "tr-1", SpanID: "sp-1"}).Info("hello", "k", "v")
	line := buf.String()
	for _, want := range []string{
		`"component":"testcomp"`,
		`"trace_id":"tr-1"`,
		`"span_id":"sp-1"`,
		`"msg":"hello"`,
		`"k":"v"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %s: %s", want, line)
		}
	}

	// nil ref is a no-op.
	buf.Reset()
	WithTrace(l, nil).Info("plain")
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("nil-ref log line should not carry trace_id: %s", buf.String())
	}
}
