package obs

import (
	"sort"
	"sync"
	"time"
)

// WindowSpec describes one sliding window: its display name, total width,
// and the number of rotating slots the width is divided into. More slots
// means finer expiry granularity at slightly more memory.
type WindowSpec struct {
	Name  string
	Width time.Duration
	Slots int
}

// DefaultWindows are the SLO windows every tenant account tracks. Slot
// counts keep each window's staleness under ~10% of its width.
var DefaultWindows = []WindowSpec{
	{Name: "1m", Width: time.Minute, Slots: 12},
	{Name: "5m", Width: 5 * time.Minute, Slots: 15},
	{Name: "1h", Width: time.Hour, Slots: 15},
}

// WindowStats is a point-in-time summary of one sliding window: rate,
// error rate, and latency quantiles over observations that fell inside
// the window as of the snapshot instant.
type WindowStats struct {
	Count     uint64  `json:"count"`
	Errors    uint64  `json:"errors"`
	QPS       float64 `json:"qps"`
	ErrorRate float64 `json:"error_rate"`
	P50       float64 `json:"p50_seconds"`
	P95       float64 `json:"p95_seconds"`
	P99       float64 `json:"p99_seconds"`
}

// windowSlot is one rotating bucket of a sliding window. epoch is the
// absolute slot number (now / slotWidth) the data belongs to; a slot whose
// epoch has fallen out of the window is dead weight until overwritten, so
// memory stays bounded at Slots buckets regardless of uptime.
type windowSlot struct {
	epoch  int64
	count  uint64
	errors uint64
	sum    float64
	hist   []uint32 // len(DefBuckets)+1, last bucket is +Inf
}

// slidingWindow is a mutex-guarded ring of windowSlots. Observations land
// in the slot for their absolute slot number; reads merge every slot whose
// epoch is still inside the window. Rotation is driven purely by the
// caller-supplied clock, so tests can step time explicitly.
type slidingWindow struct {
	spec WindowSpec
	slot time.Duration
	mu   sync.Mutex
	ring []windowSlot
}

func newSlidingWindow(spec WindowSpec) *slidingWindow {
	w := &slidingWindow{spec: spec, slot: spec.Width / time.Duration(spec.Slots)}
	w.ring = make([]windowSlot, spec.Slots)
	for i := range w.ring {
		w.ring[i] = windowSlot{epoch: -1, hist: make([]uint32, len(DefBuckets)+1)}
	}
	return w
}

// observe records one event with the given latency at time now.
func (w *slidingWindow) observe(now time.Time, seconds float64, isErr bool) {
	abs := now.UnixNano() / int64(w.slot)
	w.mu.Lock()
	s := &w.ring[int(abs%int64(len(w.ring)))]
	if s.epoch != abs {
		s.epoch = abs
		s.count, s.errors, s.sum = 0, 0, 0
		for i := range s.hist {
			s.hist[i] = 0
		}
	}
	s.count++
	if isErr {
		s.errors++
	}
	s.sum += seconds
	s.hist[sort.SearchFloat64s(DefBuckets, seconds)]++
	w.mu.Unlock()
}

// stats merges every live slot into a WindowStats as of time now. The
// current (partial) slot is included, so QPS slightly trails a perfectly
// uniform arrival rate; that bias is bounded by one slot width.
func (w *slidingWindow) stats(now time.Time) WindowStats {
	abs := now.UnixNano() / int64(w.slot)
	min := abs - int64(w.spec.Slots) + 1
	merged := make([]uint64, len(DefBuckets)+1)
	var st WindowStats
	w.mu.Lock()
	for i := range w.ring {
		s := &w.ring[i]
		if s.epoch < min || s.epoch > abs {
			continue
		}
		st.Count += s.count
		st.Errors += s.errors
		for j, c := range s.hist {
			merged[j] += uint64(c)
		}
	}
	w.mu.Unlock()
	st.QPS = float64(st.Count) / w.spec.Width.Seconds()
	if st.Count > 0 {
		st.ErrorRate = float64(st.Errors) / float64(st.Count)
		st.P50 = histQuantile(merged, st.Count, 0.50)
		st.P95 = histQuantile(merged, st.Count, 0.95)
		st.P99 = histQuantile(merged, st.Count, 0.99)
	}
	return st
}

// histQuantile estimates the q-quantile from per-bucket counts over
// DefBuckets by linear interpolation inside the bucket holding the target
// rank. Observations beyond the last finite bound clamp to that bound —
// the histogram cannot resolve further.
func histQuantile(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			if i >= len(DefBuckets) {
				return DefBuckets[len(DefBuckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = DefBuckets[i-1]
			}
			hi := DefBuckets[i]
			frac := (rank - float64(prev)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return DefBuckets[len(DefBuckets)-1]
}
