// Package obs is the platform's observability substrate: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms with atomic
// hot paths, Prometheus text exposition) and a per-experiment trace store
// whose spans form the experiment → step → per-worker → engine tree that
// GET /experiments/{uuid}/trace and `mipctl trace` render.
//
// Every instrumented package registers its metrics eagerly in a package
// var block against the Default registry, so a freshly started daemon
// already exposes zero-valued families on GET /metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {Key: "worker", Value: "hospital-0"}).
// Keep value cardinality bounded: worker ids, operators, status codes.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds (100µs … 10s).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Observations hit exactly one
// atomic bucket counter; cumulative counts are computed at exposition.
type Histogram struct {
	upper  []float64 // sorted upper bounds; a final implicit +Inf bucket
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns cumulative bucket counts — one entry per finite bound
// plus a final +Inf entry — from a single pass over the bucket counters.
// The last entry doubles as the observation total, which keeps +Inf and
// _count identical by construction even while Observe runs concurrently
// (Observe bumps the bucket before the separate count atomic, so the
// independently maintained h.count may transiently disagree).
func (h *Histogram) Snapshot() []uint64 {
	cum := make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	return cum
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gaugefunc"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance of a metric family.
type series struct {
	labels  string // canonical `k="v",...` suffix, "" for unlabeled
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry all instrumented packages use.
var Default = NewRegistry()

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric family %q already registered as %s, re-registered as %s",
			name, f.kind, kind))
	}
	return f
}

// get returns (creating under f.mu on first use) the series for the given
// labels, so concurrent first accesses observe one fully built instance.
// buckets is only used for histogram families; fn only for gaugefunc ones.
func (f *family) get(labels []Label, buckets []float64, fn func() float64) *series {
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		switch f.kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			if buckets == nil {
				buckets = DefBuckets
			}
			upper := append([]float64(nil), buckets...)
			sort.Float64s(upper)
			s.hist = &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
		}
		f.series[ls] = s
	}
	if f.kind == kindGaugeFunc && fn != nil {
		s.fn = fn
	}
	return s
}

// Counter returns (creating on first use) the counter series for the given
// name and labels. Registering the same series twice returns the same
// counter, so hot paths may cache the result in a package var.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, kindCounter).get(labels, nil, nil).counter
}

// Gauge returns the gauge series for the given name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, kindGauge).get(labels, nil, nil).gauge
}

// GaugeFunc registers a callback gauge evaluated at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.family(name, help, kindGaugeFunc).get(labels, nil, fn)
}

// Histogram returns the histogram series for the given name and labels.
// Buckets are upper bounds in ascending order; nil uses DefBuckets. All
// series of one family must share the bucket layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.family(name, help, kindHistogram).get(labels, buckets, nil).hist
}

// WritePrometheus renders every family in Prometheus text exposition
// format, sorted by family then series for stable output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.counter.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), fmtFloat(s.gauge.Value()))
			case kindGaugeFunc:
				if s.fn != nil {
					fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), fmtFloat(s.fn()))
				}
			case kindHistogram:
				writeHistogram(w, f.name, s)
			}
		}
		f.mu.Unlock()
	}
}

// writeHistogram renders one series from a single bucket snapshot, so the
// emitted +Inf bucket and _count are always equal and every cumulative
// line is non-decreasing — the separate h.count atomic (which Observe
// updates after the bucket) is never consulted here.
func writeHistogram(w io.Writer, name string, s *series) {
	cum := s.hist.Snapshot()
	for i, ub := range s.hist.upper {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bracedWith(s.labels, `le="`+fmtFloat(ub)+`"`), cum[i])
	}
	total := cum[len(cum)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bracedWith(s.labels, `le="+Inf"`), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(s.labels), fmtFloat(s.hist.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(s.labels), total)
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func bracedWith(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Package-level helpers against the Default registry.

// GetCounter returns a counter from the Default registry.
func GetCounter(name, help string, labels ...Label) *Counter {
	return Default.Counter(name, help, labels...)
}

// GetGauge returns a gauge from the Default registry.
func GetGauge(name, help string, labels ...Label) *Gauge {
	return Default.Gauge(name, help, labels...)
}

// GetHistogram returns a histogram from the Default registry.
func GetHistogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return Default.Histogram(name, help, buckets, labels...)
}
