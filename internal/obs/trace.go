package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRef is the portable trace context carried across process boundaries
// — as a JSON field in federation envelopes and as the X-MIP-Trace header
// on the HTTP hop ("traceID/spanID").
type TraceRef struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// TraceHeader is the HTTP header name carrying a TraceRef.
const TraceHeader = "X-MIP-Trace"

// String renders the header form.
func (r TraceRef) String() string { return r.TraceID + "/" + r.SpanID }

// ParseTraceRef parses the header form; ok is false for malformed input.
func ParseTraceRef(s string) (TraceRef, bool) {
	traceID, spanID, ok := strings.Cut(s, "/")
	if !ok || traceID == "" {
		return TraceRef{}, false
	}
	return TraceRef{TraceID: traceID, SpanID: spanID}, true
}

// SpanData is one finished (or in-flight) span. Spans are keyed into a
// trace by TraceID — for experiments this is the experiment UUID, so the
// trace is retrievable as GET /experiments/{uuid}/trace.
type SpanData struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	Name    string            `json:"name"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Err     string            `json:"error,omitempty"`
}

// DurationMS returns the span length in milliseconds (0 while in flight).
func (d SpanData) DurationMS() float64 {
	if d.End.IsZero() {
		return 0
	}
	return float64(d.End.Sub(d.Start)) / float64(time.Millisecond)
}

// Span is a live span handle. All methods are nil-safe so call sites can
// instrument unconditionally and pay nothing when tracing is off (the
// store returns nil spans for an empty trace id).
type Span struct {
	mu    sync.Mutex
	data  SpanData
	store *TraceStore
	done  bool
}

// ID returns the span id ("" for nil spans).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// Ref returns the span's trace context for propagation, or nil.
func (s *Span) Ref() *TraceRef {
	if s == nil {
		return nil
	}
	return &TraceRef{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// StartChild opens a child span in the same store (nil-safe: a nil parent
// yields a nil child, so disabled tracing costs nothing down the tree).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.store.StartSpan(s.data.TraceID, s.data.SpanID, name)
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[k] = v
}

// SetError records an error on the span (nil errors are ignored).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.data.Err = err.Error()
	s.mu.Unlock()
}

// End stamps the span's end time and publishes it to the store. End is
// idempotent; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.data.End = time.Now()
	data := s.snapshotLocked()
	s.mu.Unlock()
	s.store.add(data)
}

// Data returns a snapshot of the span (used by workers to ship their spans
// back in LocalRunResponse envelopes).
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Span) snapshotLocked() SpanData {
	d := s.data
	if len(s.data.Attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.data.Attrs))
		for k, v := range s.data.Attrs {
			d.Attrs[k] = v
		}
	}
	return d
}

// procID distinguishes span ids minted by different processes (master vs.
// remote workers) so imported spans never collide.
var procID = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000"
	}
	return hex.EncodeToString(b[:])
}()

var spanSeq atomic.Uint64

func newSpanID() string {
	return fmt.Sprintf("%s-%06d", procID, spanSeq.Add(1))
}

// NewSpanID mints a process-unique span id. Exposed for components that
// synthesize SpanData directly rather than through StartSpan — the
// federation worker uses it to turn engine plan nodes into operator spans.
func NewSpanID() string { return newSpanID() }

type traceRec struct {
	spans []SpanData
	ids   map[string]bool
}

// TraceStore keeps the spans of the most recent traces, bounded FIFO by
// trace id.
type TraceStore struct {
	mu     sync.Mutex
	traces map[string]*traceRec
	order  []string
	max    int
}

// NewTraceStore returns a store keeping at most max traces (default 256).
func NewTraceStore(max int) *TraceStore {
	if max <= 0 {
		max = 256
	}
	return &TraceStore{traces: make(map[string]*traceRec), max: max}
}

// DefaultTraces is the process-wide trace store.
var DefaultTraces = NewTraceStore(256)

// StartSpan opens a span under the given trace and parent span id. An
// empty traceID disables tracing for the whole call tree: the returned nil
// span is safe to use and records nothing.
func (ts *TraceStore) StartSpan(traceID, parentID, name string) *Span {
	if ts == nil || traceID == "" {
		return nil
	}
	return &Span{
		store: ts,
		data: SpanData{
			TraceID: traceID,
			SpanID:  newSpanID(),
			Parent:  parentID,
			Name:    name,
			Start:   time.Now(),
		},
	}
}

// StartSpanRef opens a child span of a propagated TraceRef (nil ref
// disables tracing).
func (ts *TraceStore) StartSpanRef(ref *TraceRef, name string) *Span {
	if ref == nil {
		return nil
	}
	return ts.StartSpan(ref.TraceID, ref.SpanID, name)
}

func (ts *TraceStore) add(d SpanData) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rec := ts.traces[d.TraceID]
	if rec == nil {
		rec = &traceRec{ids: make(map[string]bool)}
		ts.traces[d.TraceID] = rec
		ts.order = append(ts.order, d.TraceID)
		for len(ts.order) > ts.max {
			delete(ts.traces, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	if rec.ids[d.SpanID] {
		return // already imported (in-process worker returning its spans)
	}
	rec.ids[d.SpanID] = true
	rec.spans = append(rec.spans, d)
}

// Import merges finished spans shipped from another process (worker
// responses). Duplicate span ids are dropped, so the in-process transport
// — where worker spans land in the same store twice — stays correct.
func (ts *TraceStore) Import(spans []SpanData) {
	if ts == nil {
		return
	}
	for _, d := range spans {
		if d.TraceID == "" || d.SpanID == "" {
			continue
		}
		ts.add(d)
	}
}

// Spans returns the recorded spans of a trace, sorted by start time.
func (ts *TraceStore) Spans(traceID string) []SpanData {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rec := ts.traces[traceID]
	if rec == nil {
		return nil
	}
	out := append([]SpanData(nil), rec.spans...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SpanNode is one node of the rendered trace tree.
type SpanNode struct {
	SpanData
	DurMS    float64     `json:"duration_ms"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the trace's spans into parent/child trees. Spans whose
// parent is missing (or empty) become roots. Siblings sort by start time.
func (ts *TraceStore) Tree(traceID string) []*SpanNode {
	spans := ts.Spans(traceID)
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[string]*SpanNode, len(spans))
	for _, d := range spans {
		nodes[d.SpanID] = &SpanNode{SpanData: d, DurMS: d.DurationMS()}
	}
	var roots []*SpanNode
	for _, d := range spans { // spans is start-sorted: children append in order
		n := nodes[d.SpanID]
		if p := nodes[d.Parent]; d.Parent != "" && p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}
