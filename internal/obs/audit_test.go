package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func testAuditRecord(i int) AuditRecord {
	return AuditRecord{
		Kind:      "query",
		Tenant:    "alice",
		Job:       "exp-1",
		QueryID:   "q1",
		SQLDigest: SQLDigest("SELECT 1"),
		Datasets:  []string{"ppmi", "edsd"},
		Workers:   []string{"hospital-0", "hospital-1"},
		Verdict:   "completed",
		Seconds:   0.012,
		Rows:      int64(i),
	}
}

// TestAuditChainLiveVerify: appends verify end to end, the head matches
// the last record, and filters slice without breaking chain order.
func TestAuditChainLiveVerify(t *testing.T) {
	l := NewAuditLog(64)
	for i := 0; i < 10; i++ {
		r := testAuditRecord(i)
		if i%2 == 1 {
			r.Tenant = "bob"
			r.Datasets = []string{"adni"}
		}
		l.Append(r)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("live chain failed verification: %v", err)
	}
	seq, head := l.Head()
	if seq != 10 {
		t.Fatalf("head seq = %d, want 10", seq)
	}
	all := l.Entries(AuditFilter{})
	if len(all) != 10 || all[9].Hash != head {
		t.Fatalf("entries tail hash %q != head %q", all[9].Hash, head)
	}

	alice := l.Entries(AuditFilter{Tenant: "alice"})
	if len(alice) != 5 {
		t.Fatalf("tenant filter returned %d records, want 5", len(alice))
	}
	adni := l.Entries(AuditFilter{Dataset: "adni"})
	if len(adni) != 5 {
		t.Fatalf("dataset filter returned %d records, want 5", len(adni))
	}
	limited := l.Entries(AuditFilter{Limit: 3})
	if len(limited) != 3 || limited[2].Seq != 10 {
		t.Fatalf("limit filter = %+v, want the newest 3 ending at seq 10", limited)
	}
}

// A mutated middle entry must fail verification — both the record's own
// hash and (if the hash were recomputed) the successor's Prev link.
func TestVerifyChainDetectsMutatedMiddleEntry(t *testing.T) {
	l := NewAuditLog(64)
	for i := 0; i < 7; i++ {
		l.Append(testAuditRecord(i))
	}
	records := l.Entries(AuditFilter{})

	// Tamper with the payload of a middle record.
	records[3].Datasets = []string{"exfiltrated"}
	if err := VerifyChain(records); err == nil {
		t.Fatal("VerifyChain accepted a mutated middle entry")
	} else if !strings.Contains(err.Error(), "seq=4") {
		t.Fatalf("error does not point at the mutated record: %v", err)
	}

	// An attacker who re-hashes the mutated record still breaks the next
	// record's Prev link.
	records[3].Hash = records[3].chainHash()
	if err := VerifyChain(records); err == nil {
		t.Fatal("VerifyChain accepted a re-hashed middle entry")
	} else if !strings.Contains(err.Error(), "prev-hash") {
		t.Fatalf("expected a prev-hash link failure, got: %v", err)
	}

	// A deleted middle record breaks sequence/link continuity.
	records = l.Entries(AuditFilter{})
	spliced := append(append([]AuditRecord(nil), records[:3]...), records[4:]...)
	if err := VerifyChain(spliced); err == nil {
		t.Fatal("VerifyChain accepted a spliced chain")
	}

	// Untampered baseline still passes.
	if err := VerifyChain(l.Entries(AuditFilter{})); err != nil {
		t.Fatalf("untampered chain failed: %v", err)
	}
}

// Ring eviction drops the oldest records but the retained suffix (whose
// first Prev now points at an evicted record) must still verify.
func TestAuditRingEvictionKeepsSuffixVerifiable(t *testing.T) {
	l := NewAuditLog(8)
	for i := 0; i < 20; i++ {
		l.Append(testAuditRecord(i))
	}
	if got := l.Len(); got != 8 {
		t.Fatalf("ring retained %d records, want 8", got)
	}
	records := l.Entries(AuditFilter{})
	if records[0].Seq != 13 || records[7].Seq != 20 {
		t.Fatalf("retained seqs [%d..%d], want [13..20]", records[0].Seq, records[7].Seq)
	}
	if records[0].Prev == "" {
		t.Fatal("evicted-predecessor Prev lost; suffix no longer anchored to the chain")
	}
	if err := VerifyChain(records); err != nil {
		t.Fatalf("retained suffix failed verification: %v", err)
	}
}

// Records written to the JSONL sink must round-trip through JSON and
// still verify — time encoding must not perturb the hash payload.
func TestAuditJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLog(4) // smaller than the append count: sink outlives the ring
	l.SetSink(&buf)
	base := time.Date(2026, 8, 8, 9, 0, 0, 123456789, time.UTC)
	n := 0
	l.SetClock(func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) })

	for i := 0; i < 12; i++ {
		l.Append(testAuditRecord(i))
	}

	var parsed []AuditRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r AuditRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		parsed = append(parsed, r)
	}
	if len(parsed) != 12 {
		t.Fatalf("sink holds %d lines, want 12", len(parsed))
	}
	if err := VerifyChain(parsed); err != nil {
		t.Fatalf("JSONL round-trip chain failed: %v", err)
	}
	// The sink preserves records the ring already evicted.
	if parsed[0].Seq != 1 {
		t.Fatalf("sink first seq = %d, want 1", parsed[0].Seq)
	}
}

// Concurrent appends must serialize into one intact chain (run with -race).
func TestAuditConcurrentAppends(t *testing.T) {
	l := NewAuditLog(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := testAuditRecord(i)
				r.QueryID = string(rune('a' + g))
				l.Append(r)
			}
		}(g)
	}
	wg.Wait()
	if got := l.Len(); got != 400 {
		t.Fatalf("chain holds %d records, want 400", got)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("chain built concurrently failed verification: %v", err)
	}
}

// SQLDigest is stable and content-sensitive.
func TestSQLDigest(t *testing.T) {
	a, b := SQLDigest("SELECT 1"), SQLDigest("SELECT 2")
	if a == b {
		t.Fatal("distinct statements share a digest")
	}
	if a != SQLDigest("SELECT 1") {
		t.Fatal("digest is not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("digest length = %d, want 16 hex chars", len(a))
	}
}
