package obs

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

var (
	httpInFlight = GetGauge("mip_http_in_flight_requests",
		"HTTP requests currently being served.")
)

// MetricsHandler serves the Default registry in Prometheus text format —
// mount it at GET /metrics.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w)
	})
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Middleware instruments an HTTP handler with request count, latency and
// status metrics under the given component label ("api", "worker", …).
// Routes are labeled by their first path segment to keep cardinality
// bounded (/experiments/{uuid}/trace → "/experiments").
func Middleware(component string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		httpInFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// Deferred so a panicking handler (recovered per-connection by
		// net/http) still decrements the gauge and counts the request.
		defer func() {
			httpInFlight.Dec()
			elapsed := time.Since(start).Seconds()
			route := routeLabel(r.URL.Path)
			GetCounter("mip_http_requests_total", "HTTP requests served.",
				Label{"component", component},
				Label{"method", r.Method},
				Label{"route", route},
				Label{"code", strconv.Itoa(rec.status)},
			).Inc()
			GetHistogram("mip_http_request_seconds", "HTTP request latency in seconds.", nil,
				Label{"component", component},
				Label{"route", route},
			).Observe(elapsed)
		}()
		next.ServeHTTP(rec, r)
	})
}

func routeLabel(path string) string {
	path = strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(path, '/'); i >= 0 {
		path = path[:i]
	}
	if path == "" {
		return "/"
	}
	return "/" + path
}
