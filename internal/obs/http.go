package obs

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

var (
	httpInFlight = GetGauge("mip_http_in_flight_requests",
		"HTTP requests currently being served.")
)

// MetricsHandler serves the Default registry in Prometheus text format —
// mount it at GET /metrics.
func MetricsHandler() http.Handler {
	RegisterRuntimeMetrics()
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w)
	})
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Middleware instruments an HTTP handler with request count, latency and
// status metrics under the given component label ("api", "worker", …).
// A handler that panics before writing a response is recorded as a 500
// (then re-panicked so net/http keeps its per-connection recovery).
func Middleware(component string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		httpInFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		record := func() {
			httpInFlight.Dec()
			elapsed := time.Since(start).Seconds()
			route := routeLabel(r.URL.Path)
			GetCounter("mip_http_requests_total", "HTTP requests served.",
				Label{"component", component},
				Label{"method", r.Method},
				Label{"route", route},
				Label{"code", strconv.Itoa(rec.status)},
			).Inc()
			GetHistogram("mip_http_request_seconds", "HTTP request latency in seconds.", nil,
				Label{"component", component},
				Label{"route", route},
			).Observe(elapsed)
		}
		defer func() {
			if p := recover(); p != nil {
				if !rec.wrote {
					rec.status = http.StatusInternalServerError
				}
				record()
				panic(p)
			}
			record()
		}()
		next.ServeHTTP(rec, r)
	})
}

// knownRoutes is the allowlist of first path segments that may become route
// labels, audited against every route the api and worker servers register:
// api mounts healthz, metrics, pathologies, datasets, workers, algorithms,
// experiments, workflows, queries/*, tenants, audit; the worker server
// mounts localrun, cancel, query, datasets, healthz, metrics; mipd's debug
// listener mounts debug/pprof. Anything else — scanner probes, typos,
// future endpoints not yet added here — collapses to "/other" so metric
// cardinality stays bounded.
var knownRoutes = map[string]bool{
	"healthz":     true,
	"metrics":     true,
	"pathologies": true,
	"datasets":    true,
	"workers":     true,
	"algorithms":  true,
	"experiments": true,
	"workflows":   true,
	"localrun":    true,
	"cancel":      true,
	"query":       true,
	"tenants":     true,
	"audit":       true,
	"debug":       true,
}

func routeLabel(path string) string {
	trimmed := strings.TrimPrefix(path, "/")
	if trimmed == "" {
		return "/"
	}
	// The /queries endpoints have distinct cost profiles, so each gets its
	// own label; DELETE /queries/{id} collapses its unbounded numeric id to
	// one label. Any other /queries path is unknown → "/other".
	switch trimmed {
	case "queries/slow":
		return "/queries/slow"
	case "queries/explain":
		return "/queries/explain"
	case "queries/active":
		return "/queries/active"
	}
	if id, ok := strings.CutPrefix(trimmed, "queries/"); ok {
		if _, err := strconv.ParseInt(id, 10, 64); err == nil {
			return "/queries/{id}"
		}
	}
	first := trimmed
	if i := strings.IndexByte(first, '/'); i >= 0 {
		first = first[:i]
	}
	if !knownRoutes[first] {
		return "/other"
	}
	return "/" + first
}
