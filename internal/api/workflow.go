package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"mip/internal/algorithms"
	"mip/internal/obs"
)

// Workflows: the dashboard's Workflow tab chains several experiments into
// one asynchronous unit (e.g. descriptive statistics → PCA → k-means over
// the same cohort). Steps run sequentially on the federation; the workflow
// fails fast on the first failing step, and per-step results are stored
// with the workflow.

// WorkflowStep is one algorithm invocation in a chain.
type WorkflowStep struct {
	Name      string             `json:"name"`
	Algorithm string             `json:"algorithm"`
	Request   algorithms.Request `json:"request"`
}

// WorkflowRequest is the POST /workflows payload.
type WorkflowRequest struct {
	Name  string         `json:"name"`
	Steps []WorkflowStep `json:"steps"`
}

// WorkflowStepResult is one step's outcome.
type WorkflowStepResult struct {
	Name      string          `json:"name"`
	Algorithm string          `json:"algorithm"`
	Status    string          `json:"status"` // pending | success | error | skipped
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// Workflow is the stored state of one chain.
type Workflow struct {
	UUID     string               `json:"uuid"`
	Name     string               `json:"name"`
	Status   string               `json:"status"` // pending | running | success | error
	Steps    []WorkflowStepResult `json:"steps"`
	Created  time.Time            `json:"created"`
	Finished *time.Time           `json:"finished,omitempty"`

	spec []WorkflowStep
}

// snapshotWorkflow deep-copies a workflow (steps included) so JSON
// encoding outside the lock cannot race with the runner's mutations.
func snapshotWorkflow(wf *Workflow) *Workflow {
	cp := *wf
	cp.Steps = append([]WorkflowStepResult(nil), wf.Steps...)
	return &cp
}

// registerWorkflowRoutes adds the workflow endpoints to the mux; called by
// Handler.
func (s *Server) registerWorkflowRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /workflows", s.handleCreateWorkflow)
	mux.HandleFunc("GET /workflows", s.handleListWorkflows)
	mux.HandleFunc("GET /workflows/{uuid}", s.handleGetWorkflow)
}

func (s *Server) handleCreateWorkflow(w http.ResponseWriter, r *http.Request) {
	var req WorkflowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Steps) == 0 {
		writeErr(w, http.StatusUnprocessableEntity, "workflow needs at least one step")
		return
	}
	for i, st := range req.Steps {
		if algorithms.Get(st.Algorithm) == nil {
			writeErr(w, http.StatusUnprocessableEntity, "step %d: unknown algorithm %q", i, st.Algorithm)
			return
		}
		if err := s.validateDatasets(st.Request.Datasets); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "step %d: %v", i, err)
			return
		}
	}
	s.mu.Lock()
	s.seq++
	wf := &Workflow{
		UUID:    fmt.Sprintf("wf-%s-%06d", s.instance, s.seq),
		Name:    req.Name,
		Status:  "pending",
		Created: time.Now(),
		spec:    req.Steps,
	}
	for _, st := range req.Steps {
		wf.Steps = append(wf.Steps, WorkflowStepResult{
			Name: st.Name, Algorithm: st.Algorithm, Status: "pending",
		})
	}
	if s.workflows == nil {
		s.workflows = make(map[string]*Workflow)
	}
	s.workflows[wf.UUID] = wf
	snapshot := snapshotWorkflow(wf)
	s.mu.Unlock()

	if _, err := s.Runner.Submit("workflow", map[string]any{"uuid": wf.UUID}); err != nil {
		s.mu.Lock()
		wf.Status = "error"
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "submitting: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, snapshot)
}

// runWorkflowTask executes the chain.
func (s *Server) runWorkflowTask(ctx context.Context, payload json.RawMessage) (any, error) {
	var p struct {
		UUID string `json:"uuid"`
	}
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, err
	}
	s.mu.Lock()
	wf := s.workflows[p.UUID]
	if wf == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("api: unknown workflow %q", p.UUID)
	}
	wf.Status = "running"
	steps := append([]WorkflowStep(nil), wf.spec...)
	s.mu.Unlock()

	// The workflow UUID is the trace id; each step's spans nest under a
	// per-step child of this root (the trace endpoint accepts wf- uuids too).
	root := obs.DefaultTraces.StartSpan(wf.UUID, "", "workflow "+wf.Name)

	failed := false
	for i, st := range steps {
		if failed {
			s.mu.Lock()
			wf.Steps[i].Status = "skipped"
			s.mu.Unlock()
			continue
		}
		result, err := s.runStep(st, root)
		s.mu.Lock()
		if err != nil {
			wf.Steps[i].Status = "error"
			wf.Steps[i].Error = err.Error()
			failed = true
		} else {
			wf.Steps[i].Status = "success"
			wf.Steps[i].Result = result
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	now := time.Now()
	wf.Finished = &now
	if failed {
		wf.Status = "error"
	} else {
		wf.Status = "success"
	}
	root.SetAttr("status", wf.Status)
	s.mu.Unlock()
	root.End()
	return map[string]string{"uuid": p.UUID}, nil
}

func (s *Server) runStep(st WorkflowStep, parent *obs.Span) (json.RawMessage, error) {
	span := parent.StartChild("step " + st.Algorithm)
	span.SetAttr("name", st.Name)
	defer span.End()
	alg := algorithms.Get(st.Algorithm)
	if alg == nil {
		return nil, fmt.Errorf("unknown algorithm %q", st.Algorithm)
	}
	sess, err := s.Master.NewSession(st.Request.Datasets)
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	sess.SetTrace(obs.TraceRef{TraceID: parent.Data().TraceID, SpanID: span.ID()})
	res, err := algorithms.Run(alg, sess, st.Request)
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	return json.Marshal(res)
}

func (s *Server) handleListWorkflows(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]*Workflow, 0, len(s.workflows))
	for _, wf := range s.workflows {
		out = append(out, snapshotWorkflow(wf))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetWorkflow(w http.ResponseWriter, r *http.Request) {
	uuid := r.PathValue("uuid")
	s.mu.Lock()
	wf := s.workflows[uuid]
	var cp *Workflow
	if wf != nil {
		cp = snapshotWorkflow(wf)
	}
	s.mu.Unlock()
	if cp == nil {
		writeErr(w, http.StatusNotFound, "unknown workflow %q", uuid)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

// WaitForWorkflow polls until the workflow finishes.
func (s *Server) WaitForWorkflow(ctx context.Context, uuid string) (*Workflow, error) {
	for {
		s.mu.Lock()
		wf := s.workflows[uuid]
		var snapshot *Workflow
		if wf != nil {
			snapshot = snapshotWorkflow(wf)
		}
		s.mu.Unlock()
		if snapshot == nil {
			return nil, fmt.Errorf("api: unknown workflow %q", uuid)
		}
		if snapshot.Status == "success" || snapshot.Status == "error" {
			return snapshot, nil
		}
		select {
		case <-ctx.Done():
			return snapshot, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}
