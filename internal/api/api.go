// Package api implements the platform's REST interface — the backend the
// MIP dashboard talks to (Figures 3-5 of the paper): list pathologies,
// datasets and variables, browse the algorithm catalogue, create an
// experiment, poll it while "your experiment is currently running", and
// fetch its result. Experiments execute asynchronously through the task
// queue (the Celery/RabbitMQ substitute), exactly like the paper's stack.
package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mip/internal/algorithms"
	"mip/internal/catalogue"
	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/obs"
	"mip/internal/queue"
)

// API metrics, registered eagerly for GET /metrics.
var (
	apiExperiments = obs.GetCounter("mip_api_experiments_total",
		"Experiments accepted through POST /experiments.")
	apiExperimentSeconds = obs.GetHistogram("mip_api_experiment_seconds",
		"End-to-end experiment wall time (queue wait included).", nil)
)

func apiExperimentsDone(status string) *obs.Counter {
	return obs.GetCounter("mip_api_experiments_finished_total",
		"Experiments finished, by terminal status.",
		obs.Label{Key: "status", Value: status})
}

// ExperimentRequest is the POST /experiments payload. Tenant attributes the
// experiment (and every statement it runs on the federation) to a billing
// account; the X-MIP-Tenant request header takes precedence when set.
type ExperimentRequest struct {
	Name      string             `json:"name"`
	Algorithm string             `json:"algorithm"`
	Tenant    string             `json:"tenant,omitempty"`
	Request   algorithms.Request `json:"request"`
}

// Experiment is the stored state of one experiment.
type Experiment struct {
	UUID      string             `json:"uuid"`
	Name      string             `json:"name"`
	Algorithm string             `json:"algorithm"`
	Tenant    string             `json:"tenant,omitempty"`
	Request   algorithms.Request `json:"request"`
	Status    string             `json:"status"` // pending | running | success | error
	Result    json.RawMessage    `json:"result,omitempty"`
	Error     string             `json:"error,omitempty"`
	// Degraded marks a result computed from a partial quorum: DroppedWorkers
	// lists the workers whose contributions are missing (see the master's
	// Tolerance policy).
	Degraded       bool       `json:"degraded,omitempty"`
	DroppedWorkers []string   `json:"dropped_workers,omitempty"`
	Created        time.Time  `json:"created"`
	Finished       *time.Time `json:"finished,omitempty"`

	taskID string
}

// Server wires the master, the catalogue and the task runner into HTTP
// handlers.
type Server struct {
	Master    *federation.Master
	Catalogue *catalogue.Catalogue
	Runner    *queue.Runner

	mu          sync.Mutex
	experiments map[string]*Experiment
	workflows   map[string]*Workflow
	seq         int
	start       time.Time
	// instance disambiguates UUIDs (and hence trace ids, which key the
	// process-global trace store) across servers sharing a process.
	instance string

	// planCache is the engine plan cache the /cache endpoints report and
	// flush, set via SetPlanCache; unset defaults to the process-wide
	// engine.DefaultPlanCache.
	planCache    *engine.PlanCache
	planCacheSet bool
}

// SetPlanCache points the /cache endpoints at the plan cache the
// platform's databases actually use (nil = plan caching disabled). Unset,
// the endpoints operate on engine.DefaultPlanCache — wrong whenever the
// platform wires its DBs to a private cache, so the platform constructor
// always calls this.
func (s *Server) SetPlanCache(pc *engine.PlanCache) {
	s.planCache, s.planCacheSet = pc, true
}

// activePlanCache resolves the cache the /cache endpoints operate on (nil
// when caching is disabled; Stats and Flush are nil-safe).
func (s *Server) activePlanCache() *engine.PlanCache {
	if s.planCacheSet {
		return s.planCache
	}
	return engine.DefaultPlanCache
}

// NewServer builds the API server and registers the experiment task
// handler on the runner.
func NewServer(master *federation.Master, cat *catalogue.Catalogue, runner *queue.Runner) *Server {
	s := &Server{
		Master:      master,
		Catalogue:   cat,
		Runner:      runner,
		experiments: make(map[string]*Experiment),
		start:       time.Now(),
		instance:    randHex(4),
	}
	runner.Register("experiment", s.runExperimentTask)
	runner.Register("workflow", s.runWorkflowTask)
	return s
}

// Handler returns the REST mux, wrapped in the obs middleware so every
// endpoint reports request count/latency/status metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.MetricsHandler())
	mux.HandleFunc("GET /pathologies", s.handlePathologies)
	mux.HandleFunc("GET /pathologies/{code}/variables", s.handleVariables)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /workers", s.handleWorkers)
	mux.HandleFunc("GET /algorithms", s.handleAlgorithms)
	mux.HandleFunc("POST /experiments", s.handleCreateExperiment)
	mux.HandleFunc("GET /experiments", s.handleListExperiments)
	mux.HandleFunc("GET /experiments/{uuid}", s.handleGetExperiment)
	mux.HandleFunc("GET /experiments/{uuid}/trace", s.handleExperimentTrace)
	mux.HandleFunc("GET /tenants", s.handleTenants)
	mux.HandleFunc("GET /tenants/{tenant}/usage", s.handleTenantUsage)
	mux.HandleFunc("GET /audit", s.handleAudit)
	mux.HandleFunc("GET /queries/slow", s.handleSlowQueries)
	mux.HandleFunc("GET /queries/active", s.handleActiveQueries)
	mux.HandleFunc("DELETE /queries/{id}", s.handleKillQuery)
	mux.HandleFunc("POST /queries/explain", s.handleExplain)
	mux.HandleFunc("GET /cache", s.handleCacheStats)
	mux.HandleFunc("POST /cache/flush", s.handleCacheFlush)
	s.registerWorkflowRoutes(mux)
	return obs.Middleware("api", mux)
}

// handleHealthz reports liveness plus a status snapshot the CLI
// pretty-prints: uptime, federation size, queue load and experiment counts.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[string]int{}
	for _, e := range s.experiments {
		counts[e.Status]++
	}
	total := len(s.experiments)
	workflows := len(s.workflows)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"workers":        len(s.Master.Workers()),
		"worker_states":  s.Master.WorkerStates(),
		"queue_depth":    s.Runner.Depth(),
		"queue_running":  s.Runner.Running(),
		"experiments":    total,
		"by_status":      counts,
		"workflows":      workflows,
	})
}

// handleExperimentTrace serves the experiment's span tree as JSON. Spans
// exist only for experiments that actually ran on this process (the trace
// store is bounded FIFO), so a known experiment can legitimately return an
// empty tree after eviction.
func (s *Server) handleExperimentTrace(w http.ResponseWriter, r *http.Request) {
	uuid := r.PathValue("uuid")
	s.mu.Lock()
	_, knownExp := s.experiments[uuid]
	_, knownWf := s.workflows[uuid]
	s.mu.Unlock()
	if !knownExp && !knownWf {
		writeErr(w, http.StatusNotFound, "unknown experiment %q", uuid)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id": uuid,
		"spans":    obs.DefaultTraces.Spans(uuid),
		"tree":     obs.DefaultTraces.Tree(uuid),
	})
}

// AbortPending marks every non-terminal experiment and workflow as errored
// with the given reason; called on shutdown after the queue drain so
// clients polling an abandoned run see a terminal state.
func (s *Server) AbortPending(reason string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	n := 0
	for _, e := range s.experiments {
		if e.Status == "pending" || e.Status == "running" {
			e.Status = "error"
			e.Error = reason
			e.Finished = &now
			n++
		}
	}
	for _, wf := range s.workflows {
		if wf.Status == "pending" || wf.Status == "running" {
			wf.Status = "error"
			wf.Finished = &now
			n++
		}
	}
	return n
}

func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handlePathologies(w http.ResponseWriter, _ *http.Request) {
	var out []map[string]any
	for _, code := range s.Catalogue.Pathologies() {
		p := s.Catalogue.Pathology(code)
		out = append(out, map[string]any{
			"code": p.Code, "label": p.Label, "datasets": p.Datasets,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleVariables(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	p := s.Catalogue.Pathology(code)
	if p == nil {
		writeErr(w, http.StatusNotFound, "unknown pathology %q", code)
		return
	}
	if q := r.URL.Query().Get("search"); q != "" {
		writeJSON(w, http.StatusOK, p.Search(q))
		return
	}
	writeJSON(w, http.StatusOK, p.AllVariables())
}

// handleDatasets reports live dataset availability from the master (which
// tracks it per worker for algorithm shipping).
func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	if err := s.Master.RefreshAvailability(); err != nil {
		writeErr(w, http.StatusBadGateway, "availability: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.Master.Availability())
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, algorithms.Specs())
}

// handleWorkers reports each worker's circuit-breaker health and the
// datasets it hosts — the operator's view of federation fault tolerance.
func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	states := s.Master.WorkerStates()
	avail := s.Master.Availability()
	hosts := map[string][]string{}
	for ds, ids := range avail {
		for _, id := range ids {
			hosts[id] = append(hosts[id], ds)
		}
	}
	type workerView struct {
		ID                  string   `json:"id"`
		State               string   `json:"state"`
		ConsecutiveFailures int      `json:"consecutive_failures"`
		LastError           string   `json:"last_error,omitempty"`
		Datasets            []string `json:"datasets"`
	}
	var out []workerView
	for _, wc := range s.Master.Workers() {
		id := wc.ID()
		st := states[id]
		ds := hosts[id]
		sort.Strings(ds)
		out = append(out, workerView{
			ID: id, State: st.State, ConsecutiveFailures: st.ConsecutiveFailures,
			LastError: st.LastError, Datasets: ds,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateExperiment(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if algorithms.Get(req.Algorithm) == nil {
		writeErr(w, http.StatusUnprocessableEntity, "unknown algorithm %q (see GET /algorithms)", req.Algorithm)
		return
	}
	if err := s.validateDatasets(req.Request.Datasets); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if h := r.Header.Get("X-MIP-Tenant"); h != "" {
		req.Tenant = h
	}
	s.mu.Lock()
	s.seq++
	exp := &Experiment{
		UUID:      fmt.Sprintf("exp-%s-%06d", s.instance, s.seq),
		Name:      req.Name,
		Algorithm: req.Algorithm,
		Tenant:    req.Tenant,
		Request:   req.Request,
		Status:    "pending",
		Created:   time.Now(),
	}
	s.experiments[exp.UUID] = exp
	s.mu.Unlock()

	apiExperiments.Inc()
	taskID, err := s.Runner.Submit("experiment", map[string]any{"uuid": exp.UUID})
	if err != nil {
		s.mu.Lock()
		exp.Status = "error"
		exp.Error = err.Error()
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "submitting: %v", err)
		return
	}
	s.mu.Lock()
	exp.taskID = taskID
	snapshot := *exp // the runner mutates exp concurrently; encode a copy
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, &snapshot)
}

func (s *Server) validateDatasets(datasets []string) error {
	if len(datasets) == 0 {
		return nil
	}
	avail := s.Master.Availability()
	var missing []string
	for _, d := range datasets {
		if len(avail[d]) == 0 {
			missing = append(missing, d)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("no worker holds dataset(s) %s", strings.Join(missing, ", "))
	}
	return nil
}

// runExperimentTask is the queue handler that actually executes an
// experiment on the federation.
func (s *Server) runExperimentTask(ctx context.Context, payload json.RawMessage) (any, error) {
	var p struct {
		UUID string `json:"uuid"`
	}
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, err
	}
	s.mu.Lock()
	exp := s.experiments[p.UUID]
	if exp == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("api: unknown experiment %q", p.UUID)
	}
	exp.Status = "running"
	alg := algorithms.Get(exp.Algorithm)
	req := exp.Request
	created := exp.Created
	tenant := exp.Tenant
	s.mu.Unlock()

	// The experiment UUID doubles as the trace id: every span recorded while
	// the algorithm runs — master fan-outs, per-worker round-trips (local or
	// over HTTP), SMPC rounds, engine queries — nests under this root.
	root := obs.DefaultTraces.StartSpan(exp.UUID, "", "experiment "+exp.Algorithm)
	root.SetAttr("name", exp.Name)

	var sess *federation.Session
	finish := func(result algorithms.Result, err error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		now := time.Now()
		exp.Finished = &now
		apiExperimentSeconds.Observe(now.Sub(created).Seconds())
		if err != nil {
			exp.Status = "error"
			exp.Error = err.Error()
		} else if enc, encErr := json.Marshal(result); encErr != nil {
			exp.Status = "error"
			exp.Error = encErr.Error()
		} else {
			exp.Status = "success"
			exp.Result = enc
		}
		if sess != nil {
			if dropped := sess.Dropped(); len(dropped) > 0 {
				exp.Degraded = true
				exp.DroppedWorkers = dropped
				root.SetAttr("dropped_workers", strings.Join(dropped, ","))
			}
		}
		apiExperimentsDone(exp.Status).Inc()
		root.SetAttr("status", exp.Status)
		if exp.Status == "error" {
			root.SetAttr("error", exp.Error)
		}
		root.End()

		// Fold the experiment into the tenant's account and seal it onto the
		// audit chain. Per-statement rows/bytes were already metered by the
		// engine governor as the workers ran; this records the experiment
		// itself — its verdict, its worker set and any degraded quorum.
		d := obs.UsageDelta{
			Experiments: 1,
			Seconds:     now.Sub(created).Seconds(),
		}
		rec := obs.AuditRecord{
			Kind:      "experiment",
			Tenant:    tenant,
			Job:       exp.UUID,
			QueryID:   exp.UUID,
			SQLDigest: obs.SQLDigest(exp.Algorithm),
			Datasets:  req.Datasets,
			Verdict:   exp.Status,
			Seconds:   now.Sub(created).Seconds(),
		}
		if exp.Status == "error" {
			d.ExperimentErrors = 1
		}
		if sess != nil {
			rec.Workers = sess.WorkerIDs()
			rec.Dropped = exp.DroppedWorkers
		}
		if exp.Degraded {
			d.Degraded = 1
		}
		obs.DefaultTenants.Record(tenant, d)
		obs.DefaultAudit.Append(rec)
	}

	sess, err := s.Master.NewSession(req.Datasets)
	if err != nil {
		finish(nil, err)
		return nil, nil // failure recorded on the experiment, not retried
	}
	sess.SetTrace(obs.TraceRef{TraceID: exp.UUID, SpanID: root.ID()})
	sess.SetTenant(tenant) // every worker statement meters under this account
	result, err := algorithms.Run(alg, sess, req)
	finish(result, err)
	return map[string]string{"uuid": p.UUID}, nil
}

func (s *Server) handleListExperiments(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]*Experiment, 0, len(s.experiments))
	for _, e := range s.experiments {
		cp := *e
		out = append(out, &cp)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetExperiment(w http.ResponseWriter, r *http.Request) {
	uuid := r.PathValue("uuid")
	s.mu.Lock()
	e := s.experiments[uuid]
	var cp *Experiment
	if e != nil {
		c := *e
		cp = &c
	}
	s.mu.Unlock()
	if cp == nil {
		writeErr(w, http.StatusNotFound, "unknown experiment %q", uuid)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

// WaitForExperiment polls until the experiment finishes (test/CLI helper).
func (s *Server) WaitForExperiment(ctx context.Context, uuid string) (*Experiment, error) {
	for {
		s.mu.Lock()
		e := s.experiments[uuid]
		var snapshot *Experiment
		if e != nil {
			c := *e
			snapshot = &c
		}
		s.mu.Unlock()
		if snapshot == nil {
			return nil, fmt.Errorf("api: unknown experiment %q", uuid)
		}
		if snapshot.Status == "success" || snapshot.Status == "error" {
			return snapshot, nil
		}
		select {
		case <-ctx.Done():
			return snapshot, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}
