package api

import (
	"encoding/json"
	"net/http"
	"strconv"

	"mip/internal/engine"
	"mip/internal/obs"
)

// Query-observability endpoints: the live statement registry (with kill),
// the process-wide slow-query log and federated EXPLAIN over the workers'
// merge view.

// handleActiveQueries serves a snapshot of every statement currently
// executing in this process: id, SQL, tenant/experiment tag, start time,
// live rows and accounted bytes, and the operator it is inside right now.
func (s *Server) handleActiveQueries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"queries": engine.Queries.List(),
	})
}

// handleKillQuery cancels a live statement by registry id. The query fails
// with a cancelled verdict at its next batch boundary; on federated merge
// queries the cancellation rides the per-part contexts to the workers.
func (s *Server) handleKillQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad query id %q", r.PathValue("id"))
		return
	}
	if !engine.Queries.Cancel(id) {
		writeErr(w, http.StatusNotFound, "no active query %d", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"killed": id})
}

// handleSlowQueries serves the retained slow-query records, newest first.
func (s *Server) handleSlowQueries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_seconds": engine.DefaultSlowLog.Threshold().Seconds(),
		"queries":           engine.DefaultSlowLog.Entries(),
	})
}

// handleCacheStats serves both cache tiers' counters: the engine plan
// cache this platform's databases resolve statements through (see
// SetPlanCache) and the master's federated result cache.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"plan":   s.activePlanCache().Stats(),
		"result": s.Master.ResultCacheStats(),
	})
}

// handleCacheFlush drops every entry of both cache tiers and seals the
// flush onto the audit chain (who cleared the caches, and when, is an
// operational event worth keeping).
func (s *Server) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	pc := s.activePlanCache()
	plan := pc.Stats().Entries
	pc.Flush()
	result := s.Master.FlushResultCache()
	obs.DefaultAudit.Append(obs.AuditRecord{
		Kind:    "cache-flush",
		Tenant:  r.Header.Get("X-MIP-Tenant"),
		Verdict: "completed",
		Rows:    int64(plan + result),
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"flushed_plan_entries":   plan,
		"flushed_result_entries": result,
	})
}

type explainRequest struct {
	SQL      string   `json:"sql"`
	Analyze  bool     `json:"analyze"`
	Datasets []string `json:"datasets"`
	// Tenant attributes the statement (which executes under analyze) to a
	// usage account; the X-MIP-Tenant header takes precedence when set.
	Tenant string `json:"tenant,omitempty"`
}

// handleExplain plans (or, with analyze, executes and profiles) a federated
// query over the merge view of the workers holding the requested datasets.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "missing sql")
		return
	}
	if len(req.Datasets) == 0 {
		req.Datasets = s.Master.Datasets()
	}
	if err := s.validateDatasets(req.Datasets); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if h := r.Header.Get("X-MIP-Tenant"); h != "" {
		req.Tenant = h
	}
	lines, err := s.Master.ExplainAs(req.Tenant, req.Datasets, req.SQL, req.Analyze)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sql":      req.SQL,
		"analyzed": req.Analyze,
		"datasets": req.Datasets,
		"plan":     lines,
	})
}
