package api

import (
	"encoding/json"
	"net/http"

	"mip/internal/engine"
)

// Query-observability endpoints: the process-wide slow-query log and
// federated EXPLAIN over the workers' merge view.

// handleSlowQueries serves the retained slow-query records, newest first.
func (s *Server) handleSlowQueries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_seconds": engine.DefaultSlowLog.Threshold().Seconds(),
		"queries":           engine.DefaultSlowLog.Entries(),
	})
}

type explainRequest struct {
	SQL      string   `json:"sql"`
	Analyze  bool     `json:"analyze"`
	Datasets []string `json:"datasets"`
}

// handleExplain plans (or, with analyze, executes and profiles) a federated
// query over the merge view of the workers holding the requested datasets.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "missing sql")
		return
	}
	if len(req.Datasets) == 0 {
		req.Datasets = s.Master.Datasets()
	}
	if err := s.validateDatasets(req.Datasets); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	lines, err := s.Master.Explain(req.Datasets, req.SQL, req.Analyze)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sql":      req.SQL,
		"analyzed": req.Analyze,
		"datasets": req.Datasets,
		"plan":     lines,
	})
}
