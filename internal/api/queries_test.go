package api

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"mip/internal/engine"
)

func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)

	var doc struct {
		Datasets []string `json:"datasets"`
		Plan     []string `json:"plan"`
	}
	code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT avg(subjectageyears) AS m FROM data", "analyze": true}, &doc)
	if code != http.StatusOK {
		t.Fatalf("explain status = %d", code)
	}
	joined := strings.Join(doc.Plan, "\n")
	if !strings.Contains(joined, "merge pushdown data") || !strings.Contains(joined, "rows_out=") {
		t.Errorf("unexpected analyzed plan:\n%s", joined)
	}
	if len(doc.Datasets) == 0 {
		t.Error("explain did not report the datasets it planned over")
	}

	if code := postJSON(t, ts.URL+"/queries/explain", map[string]any{"analyze": true}, nil); code != http.StatusBadRequest {
		t.Errorf("missing sql status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT subjectageyears FROM data", "datasets": []string{"nope"}}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown dataset status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT bogus syntax"}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad sql status = %d, want 422", code)
	}
}

func TestSlowQueriesEndpoint(t *testing.T) {
	_, ts := testServer(t)
	old := engine.DefaultSlowLog
	engine.DefaultSlowLog = engine.NewSlowLog(8, time.Nanosecond)
	defer func() { engine.DefaultSlowLog = old }()

	// Run something through the engine so the log has an entry.
	if code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT count(*) AS n FROM data", "analyze": true}, nil); code != http.StatusOK {
		t.Fatalf("explain status = %d", code)
	}

	var doc struct {
		ThresholdSeconds float64            `json:"threshold_seconds"`
		Queries          []engine.SlowQuery `json:"queries"`
	}
	if code := getJSON(t, ts.URL+"/queries/slow", &doc); code != http.StatusOK {
		t.Fatalf("slow status = %d", code)
	}
	if len(doc.Queries) == 0 {
		t.Fatal("slow log is empty after a traced query")
	}
	found := false
	for _, q := range doc.Queries {
		if strings.Contains(q.SQL, "count(*)") {
			found = true
		}
	}
	if !found {
		t.Errorf("slow log does not contain the executed query: %+v", doc.Queries)
	}
}
