package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mip/internal/engine"
)

func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)

	var doc struct {
		Datasets []string `json:"datasets"`
		Plan     []string `json:"plan"`
	}
	code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT avg(subjectageyears) AS m FROM data", "analyze": true}, &doc)
	if code != http.StatusOK {
		t.Fatalf("explain status = %d", code)
	}
	joined := strings.Join(doc.Plan, "\n")
	if !strings.Contains(joined, "merge pushdown data") || !strings.Contains(joined, "rows_out=") {
		t.Errorf("unexpected analyzed plan:\n%s", joined)
	}
	if len(doc.Datasets) == 0 {
		t.Error("explain did not report the datasets it planned over")
	}

	if code := postJSON(t, ts.URL+"/queries/explain", map[string]any{"analyze": true}, nil); code != http.StatusBadRequest {
		t.Errorf("missing sql status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT subjectageyears FROM data", "datasets": []string{"nope"}}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown dataset status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT bogus syntax"}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad sql status = %d, want 422", code)
	}
}

func TestSlowQueriesEndpoint(t *testing.T) {
	_, ts := testServer(t)
	old := engine.DefaultSlowLog
	engine.DefaultSlowLog = engine.NewSlowLog(8, time.Nanosecond)
	defer func() { engine.DefaultSlowLog = old }()

	// Run something through the engine so the log has an entry.
	if code := postJSON(t, ts.URL+"/queries/explain",
		map[string]any{"sql": "SELECT count(*) AS n FROM data", "analyze": true}, nil); code != http.StatusOK {
		t.Fatalf("explain status = %d", code)
	}

	var doc struct {
		ThresholdSeconds float64            `json:"threshold_seconds"`
		Queries          []engine.SlowQuery `json:"queries"`
	}
	if code := getJSON(t, ts.URL+"/queries/slow", &doc); code != http.StatusOK {
		t.Fatalf("slow status = %d", code)
	}
	if len(doc.Queries) == 0 {
		t.Fatal("slow log is empty after a traced query")
	}
	found := false
	for _, q := range doc.Queries {
		if strings.Contains(q.SQL, "count(*)") {
			found = true
		}
	}
	if !found {
		t.Errorf("slow log does not contain the executed query: %+v", doc.Queries)
	}
}

// doDelete issues a DELETE and decodes the JSON body into out when non-nil.
func doDelete(t *testing.T, url string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// blockingAPIPart parks a merge-part query until its context dies, giving
// the endpoint tests a statement that stays active until killed.
type blockingAPIPart struct {
	started chan struct{}
	once    sync.Once
}

func (p *blockingAPIPart) PartName() string { return "bp" }
func (p *blockingAPIPart) Query(string) (*engine.Table, error) {
	return nil, errors.New("blockingAPIPart needs QueryCtx")
}
func (p *blockingAPIPart) QueryCtx(ctx context.Context, _ string) (*engine.Table, error) {
	p.once.Do(func() { close(p.started) })
	<-ctx.Done()
	return nil, context.Cause(ctx)
}

// TestCacheEndpointsUsePlatformPlanCache: when the platform wires its DBs
// to a private plan cache (Config.PlanCacheSize), GET /cache must report
// that cache — not the unused process default — and POST /cache/flush must
// flush it.
func TestCacheEndpointsUsePlatformPlanCache(t *testing.T) {
	s, ts := testServer(t)
	private := engine.NewPlanCache(16)
	s.SetPlanCache(private)

	// Populate the private cache through a DB wired to it, the way the
	// platform's worker DBs are.
	db := engine.NewDB(engine.WithPlanCache(private))
	tab := engine.NewTable(engine.Schema{{Name: "v", Type: engine.Float64}})
	if err := tab.AppendRow(1.0); err != nil {
		t.Fatal(err)
	}
	db.RegisterTable("t", tab)
	if _, err := db.Query(`SELECT sum(v) AS s FROM t`); err != nil {
		t.Fatal(err)
	}
	if n := private.Stats().Entries; n != 1 {
		t.Fatalf("private cache entries = %d, want 1", n)
	}

	var stats struct {
		Plan engine.PlanCacheStats `json:"plan"`
	}
	if code := getJSON(t, ts.URL+"/cache", &stats); code != http.StatusOK {
		t.Fatalf("GET /cache status = %d", code)
	}
	if stats.Plan.Entries != 1 || stats.Plan.Capacity != 16 {
		t.Fatalf("GET /cache reports %+v, want the private cache (1 entry, capacity 16)", stats.Plan)
	}

	var flushed struct {
		Plan int `json:"flushed_plan_entries"`
	}
	if code := postJSON(t, ts.URL+"/cache/flush", struct{}{}, &flushed); code != http.StatusOK {
		t.Fatalf("POST /cache/flush status = %d", code)
	}
	if flushed.Plan != 1 {
		t.Fatalf("flush reported %d plan entries, want 1", flushed.Plan)
	}
	if n := private.Stats().Entries; n != 0 {
		t.Fatalf("private cache not flushed: %d entries", n)
	}
}

func TestActiveQueriesAndKillEndpoints(t *testing.T) {
	_, ts := testServer(t)

	// Error paths first: malformed and unknown ids.
	if code := doDelete(t, ts.URL+"/queries/abc", nil); code != http.StatusBadRequest {
		t.Errorf("DELETE /queries/abc status = %d, want 400", code)
	}
	if code := doDelete(t, ts.URL+"/queries/999999999", nil); code != http.StatusNotFound {
		t.Errorf("DELETE /queries/999999999 status = %d, want 404", code)
	}

	// Park a statement in the process-wide registry and watch it through
	// the API: it must appear in /queries/active, die on DELETE, and
	// disappear from the listing.
	db := engine.NewDB()
	bp := &blockingAPIPart{started: make(chan struct{})}
	db.RegisterMerge("apislow", &engine.MergeTable{
		Schema:    engine.Schema{{Name: "age", Type: engine.Float64}},
		TableName: "apislow",
		Parts:     []engine.Part{bp},
	})
	done := make(chan error, 1)
	go func() {
		_, err := db.Query(`SELECT avg(age) AS a FROM apislow`)
		done <- err
	}()
	select {
	case <-bp.started:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the blocking part")
	}

	var active struct {
		Queries []engine.QueryInfo `json:"queries"`
	}
	if code := getJSON(t, ts.URL+"/queries/active", &active); code != http.StatusOK {
		t.Fatalf("GET /queries/active status = %d", code)
	}
	var id int64
	for _, q := range active.Queries {
		if strings.Contains(q.SQL, "apislow") {
			id = q.ID
		}
	}
	if id == 0 {
		t.Fatalf("blocked query not listed in /queries/active: %+v", active.Queries)
	}

	var killed struct {
		Killed int64 `json:"killed"`
	}
	if code := doDelete(t, fmt.Sprintf("%s/queries/%d", ts.URL, id), &killed); code != http.StatusOK {
		t.Fatalf("DELETE /queries/%d status = %d", id, code)
	}
	if killed.Killed != id {
		t.Errorf("kill response id = %d, want %d", killed.Killed, id)
	}
	select {
	case err := <-done:
		if !errors.Is(err, engine.ErrQueryCancelled) {
			t.Fatalf("killed query error = %v, want ErrQueryCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not unwind after DELETE")
	}

	if code := getJSON(t, ts.URL+"/queries/active", &active); code != http.StatusOK {
		t.Fatalf("GET /queries/active status = %d", code)
	}
	for _, q := range active.Queries {
		if q.ID == id {
			t.Fatalf("killed query %d still listed as active", id)
		}
	}
}
