package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"mip/internal/algorithms"
	"mip/internal/obs"
)

// postJSONAs is postJSON with the X-MIP-Tenant header set.
func postJSONAs(t *testing.T, tenant, url string, in, out any) int {
	t.Helper()
	body, _ := json.Marshal(in)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-MIP-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// Two tenants drive the API concurrently — experiments plus an executing
// federated EXPLAIN ANALYZE each — and GET /tenants must report both
// accounts with their own query counts, shipped bytes and windowed
// latency percentiles; GET /audit must hold each tenant's trail on a
// chain that verifies.
func TestTenantUsageSplitAcrossConcurrentTenants(t *testing.T) {
	s, ts := testServer(t)
	stamp := time.Now().UnixNano()
	alice := fmt.Sprintf("alice-%d", stamp)
	bob := fmt.Sprintf("bob-%d", stamp)

	runTenant := func(tenant string, experiments int) {
		var uuids []string
		for i := 0; i < experiments; i++ {
			var exp Experiment
			code := postJSONAs(t, tenant, ts.URL+"/experiments", ExperimentRequest{
				Name:      fmt.Sprintf("%s-run-%d", tenant, i),
				Algorithm: "descriptive_stats",
				Request: algorithms.Request{
					Datasets: []string{"edsd"},
					Y:        []string{"ab42", "p_tau"},
				},
			}, &exp)
			if code != 201 {
				t.Errorf("%s: create = %d", tenant, code)
				return
			}
			if exp.Tenant != tenant {
				t.Errorf("created experiment tenant = %q, want %q", exp.Tenant, tenant)
			}
			uuids = append(uuids, exp.UUID)
		}
		// An executing federated statement ships partial aggregates from
		// both workers, so the account accrues shipped rows/bytes.
		code := postJSONAs(t, tenant, ts.URL+"/queries/explain", explainRequest{
			SQL:     `SELECT count(*) AS n, avg(ab42) AS a FROM data`,
			Analyze: true,
		}, nil)
		if code != 200 {
			t.Errorf("%s: explain analyze = %d", tenant, code)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, id := range uuids {
			final, err := s.WaitForExperiment(ctx, id)
			if err != nil {
				t.Error(err)
				return
			}
			if final.Status != "success" {
				t.Errorf("%s/%s: %q (%s)", tenant, id, final.Status, final.Error)
			}
		}
	}

	var wg sync.WaitGroup
	for _, tc := range []struct {
		tenant string
		n      int
	}{{alice, 3}, {bob, 1}} {
		wg.Add(1)
		go func(tenant string, n int) {
			defer wg.Done()
			runTenant(tenant, n)
		}(tc.tenant, tc.n)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var listing struct {
		Tenants []obs.TenantUsage `json:"tenants"`
	}
	if code := getJSON(t, ts.URL+"/tenants", &listing); code != 200 {
		t.Fatalf("GET /tenants = %d", code)
	}
	byTenant := map[string]obs.TenantUsage{}
	for _, u := range listing.Tenants {
		byTenant[u.Tenant] = u
	}
	ua, ok := byTenant[alice]
	if !ok {
		t.Fatalf("tenant %q missing from /tenants", alice)
	}
	ub, ok := byTenant[bob]
	if !ok {
		t.Fatalf("tenant %q missing from /tenants", bob)
	}

	// Counts split by account: alice ran 3 experiments to bob's 1, and both
	// accounts metered their own governed statements.
	if ua.Experiments != 3 || ub.Experiments != 1 {
		t.Fatalf("experiments split = %d/%d, want 3/1", ua.Experiments, ub.Experiments)
	}
	for _, u := range []obs.TenantUsage{ua, ub} {
		if u.Queries == 0 {
			t.Fatalf("tenant %s metered no statements: %+v", u.Tenant, u)
		}
		if u.BytesShipped == 0 || u.RowsShipped == 0 {
			t.Fatalf("tenant %s shipped rows=%d bytes=%d, want > 0",
				u.Tenant, u.RowsShipped, u.BytesShipped)
		}
		w1, ok := u.Windows["1m"]
		if !ok {
			t.Fatalf("tenant %s has no 1m window: %+v", u.Tenant, u.Windows)
		}
		if w1.Count == 0 || w1.P95 <= 0 {
			t.Fatalf("tenant %s 1m window = %+v, want live count and p95", u.Tenant, w1)
		}
	}

	// The single-tenant endpoint agrees with the listing; unknown tenants 404.
	var one obs.TenantUsage
	if code := getJSON(t, ts.URL+"/tenants/"+alice+"/usage", &one); code != 200 {
		t.Fatalf("GET /tenants/{id}/usage = %d", code)
	}
	if one.Tenant != alice || one.Experiments != ua.Experiments {
		t.Fatalf("usage endpoint = %+v, listing = %+v", one, ua)
	}
	if code := getJSON(t, ts.URL+"/tenants/nope-"+alice+"/usage", nil); code != 404 {
		t.Fatalf("unknown tenant = %d, want 404", code)
	}

	// The audit trail holds each tenant's records — experiment entries with
	// the worker set, query entries with datasets — on a verifying chain.
	for tenant, wantExp := range map[string]int{alice: 3, bob: 1} {
		var audit struct {
			Records  []obs.AuditRecord `json:"records"`
			Verified bool              `json:"verified"`
			HeadSeq  uint64            `json:"head_seq"`
		}
		if code := getJSON(t, ts.URL+"/audit?tenant="+tenant, &audit); code != 200 {
			t.Fatalf("GET /audit = %d", code)
		}
		if !audit.Verified {
			t.Fatal("audit chain did not verify")
		}
		exps, queries := 0, 0
		for _, r := range audit.Records {
			switch r.Kind {
			case "experiment":
				exps++
				if len(r.Workers) != 2 {
					t.Fatalf("experiment audit workers = %v, want both", r.Workers)
				}
			case "query":
				queries++
			}
		}
		if exps != wantExp || queries == 0 {
			t.Fatalf("tenant %s audit: %d experiment / %d query records, want %d/>0",
				tenant, exps, queries, wantExp)
		}
	}
}
