package api

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mip/internal/algorithms"
	"mip/internal/obs"
)

func runOneExperiment(t *testing.T, s *Server, ts string) string {
	t.Helper()
	var exp Experiment
	code := postJSON(t, ts+"/experiments", ExperimentRequest{
		Name:      "obs test",
		Algorithm: "descriptive_stats",
		Request:   algorithms.Request{Datasets: []string{"edsd"}, Y: []string{"lefthippocampus"}},
	}, &exp)
	if code != 201 {
		t.Fatalf("create = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := s.WaitForExperiment(ctx, exp.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != "success" {
		t.Fatalf("experiment status = %s (%s)", done.Status, done.Error)
	}
	return exp.UUID
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := testServer(t)
	runOneExperiment(t, s, ts.URL)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)

	// Every subsystem must expose at least one counter, gauge and histogram.
	for _, want := range []string{
		// api
		"mip_http_requests_total", "mip_http_in_flight_requests", "mip_http_request_seconds_bucket",
		"mip_api_experiments_total",
		// federation
		"mip_federation_localruns_total", "mip_federation_workers", "mip_federation_fanout_seconds_bucket",
		// engine
		"mip_engine_queries_total", "mip_engine_tables", "mip_engine_query_seconds_bucket",
		// queue
		"mip_queue_tasks_total", "mip_queue_depth", "mip_queue_task_run_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestExperimentTraceEndpoint(t *testing.T) {
	s, ts := testServer(t)
	uuid := runOneExperiment(t, s, ts.URL)

	var doc struct {
		TraceID string          `json:"trace_id"`
		Spans   []obs.SpanData  `json:"spans"`
		Tree    []*obs.SpanNode `json:"tree"`
	}
	if code := getJSON(t, ts.URL+"/experiments/"+uuid+"/trace", &doc); code != 200 {
		t.Fatalf("trace = %d", code)
	}
	if doc.TraceID != uuid {
		t.Fatalf("trace id = %q, want %q", doc.TraceID, uuid)
	}
	if len(doc.Tree) != 1 {
		t.Fatalf("trace roots = %d, want 1", len(doc.Tree))
	}
	root := doc.Tree[0]
	if !strings.HasPrefix(root.Name, "experiment ") {
		t.Fatalf("root span = %q", root.Name)
	}
	if root.Attrs["status"] != "success" {
		t.Fatalf("root status attr = %q", root.Attrs["status"])
	}
	if root.DurMS <= 0 {
		t.Fatalf("root duration = %v, want > 0", root.DurMS)
	}
	// The algorithm's fan-outs must nest under the root, with per-worker
	// round-trip spans below them.
	var workers int
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		if strings.HasPrefix(n.Name, "worker ") {
			workers++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if workers < 2 {
		t.Fatalf("per-worker spans in tree = %d, want >= 2", workers)
	}

	if code := getJSON(t, ts.URL+"/experiments/nope/trace", nil); code != 404 {
		t.Fatalf("unknown experiment trace = %d, want 404", code)
	}
}
