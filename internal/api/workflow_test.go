package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mip/internal/algorithms"
)

func TestWorkflowLifecycle(t *testing.T) {
	s, ts := testServer(t)
	req := WorkflowRequest{
		Name: "profile then cluster",
		Steps: []WorkflowStep{
			{
				Name:      "profile",
				Algorithm: "descriptive_stats",
				Request:   algorithms.Request{Datasets: []string{"edsd"}, Y: []string{"ab42", "p_tau"}},
			},
			{
				Name:      "pca",
				Algorithm: "pca",
				Request:   algorithms.Request{Datasets: []string{"edsd"}, Y: []string{"ab42", "p_tau", "lefthippocampus"}},
			},
			{
				Name:      "cluster",
				Algorithm: "kmeans",
				Request: algorithms.Request{
					Datasets:   []string{"edsd"},
					Y:          []string{"ab42", "p_tau"},
					Parameters: map[string]any{"k": 2, "iterations_max_number": 20},
				},
			},
		},
	}
	var wf Workflow
	if code := postJSON(t, ts.URL+"/workflows", req, &wf); code != 201 {
		t.Fatalf("create = %d", code)
	}
	if len(wf.Steps) != 3 {
		t.Fatalf("steps = %d", len(wf.Steps))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.WaitForWorkflow(ctx, wf.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "success" {
		t.Fatalf("status = %q, steps = %+v", final.Status, final.Steps)
	}
	for _, st := range final.Steps {
		if st.Status != "success" || len(st.Result) == 0 {
			t.Fatalf("step %q: %q (%s)", st.Name, st.Status, st.Error)
		}
	}
	if final.Finished == nil {
		t.Fatal("finished timestamp missing")
	}

	// List and get endpoints.
	var list []Workflow
	if code := getJSON(t, ts.URL+"/workflows", &list); code != 200 || len(list) != 1 {
		t.Fatalf("list = %d entries (code %d)", len(list), code)
	}
	var fetched Workflow
	if code := getJSON(t, ts.URL+"/workflows/"+wf.UUID, &fetched); code != 200 {
		t.Fatalf("get = %d", code)
	}
	if fetched.Status != "success" {
		t.Fatalf("fetched status = %q", fetched.Status)
	}
}

func TestWorkflowFailFast(t *testing.T) {
	s, ts := testServer(t)
	req := WorkflowRequest{
		Name: "fails in the middle",
		Steps: []WorkflowStep{
			{Name: "ok", Algorithm: "descriptive_stats",
				Request: algorithms.Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}}},
			{Name: "boom", Algorithm: "linear_regression",
				Request: algorithms.Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}}}, // no X → error
			{Name: "never", Algorithm: "descriptive_stats",
				Request: algorithms.Request{Datasets: []string{"edsd"}, Y: []string{"p_tau"}}},
		},
	}
	var wf Workflow
	if code := postJSON(t, ts.URL+"/workflows", req, &wf); code != 201 {
		t.Fatalf("create = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.WaitForWorkflow(ctx, wf.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "error" {
		t.Fatalf("status = %q", final.Status)
	}
	if final.Steps[0].Status != "success" {
		t.Fatalf("step 0 = %q", final.Steps[0].Status)
	}
	if final.Steps[1].Status != "error" || final.Steps[1].Error == "" {
		t.Fatalf("step 1 = %+v", final.Steps[1])
	}
	if final.Steps[2].Status != "skipped" {
		t.Fatalf("step 2 = %q", final.Steps[2].Status)
	}
}

func TestWorkflowValidation(t *testing.T) {
	_, ts := testServer(t)
	// Empty workflow.
	if code := postJSON(t, ts.URL+"/workflows", WorkflowRequest{Name: "empty"}, nil); code != 422 {
		t.Fatalf("empty = %d", code)
	}
	// Unknown algorithm inside a step.
	code := postJSON(t, ts.URL+"/workflows", WorkflowRequest{
		Steps: []WorkflowStep{{Algorithm: "ghost"}},
	}, nil)
	if code != 422 {
		t.Fatalf("unknown algorithm = %d", code)
	}
	// Unknown dataset inside a step.
	code = postJSON(t, ts.URL+"/workflows", WorkflowRequest{
		Steps: []WorkflowStep{{
			Algorithm: "descriptive_stats",
			Request:   algorithms.Request{Datasets: []string{"ghost"}, Y: []string{"ab42"}},
		}},
	}, nil)
	if code != 422 {
		t.Fatalf("unknown dataset = %d", code)
	}
	// Malformed body.
	resp, err := http.Post(ts.URL+"/workflows", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed = %d", resp.StatusCode)
	}
	// Unknown workflow id.
	if code := getJSON(t, ts.URL+"/workflows/ghost", nil); code != 404 {
		t.Fatalf("unknown workflow = %d", code)
	}
}

// The decoder must not be confused by Result round trips.
func TestWorkflowResultDecodable(t *testing.T) {
	s, ts := testServer(t)
	var wf Workflow
	postJSON(t, ts.URL+"/workflows", WorkflowRequest{
		Steps: []WorkflowStep{{
			Name:      "corr",
			Algorithm: "pearson_correlation",
			Request: algorithms.Request{
				Datasets: []string{"edsd"},
				Y:        []string{"minimentalstate"},
				X:        []string{"lefthippocampus"},
			},
		}},
	}, &wf)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.WaitForWorkflow(ctx, wf.UUID)
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal(final.Steps[0].Result, &res); err != nil {
		t.Fatal(err)
	}
	corrs := res["correlations"].([]any)
	r := corrs[0].(map[string]any)["r"].(float64)
	if r <= 0 {
		t.Fatalf("r = %v, expected positive MMSE~hippocampus correlation", r)
	}
}
