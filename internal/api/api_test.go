package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mip/internal/algorithms"
	"mip/internal/catalogue"
	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/queue"
	"mip/internal/synth"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	var clients []federation.WorkerClient
	for i := 0; i < 2; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 150, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		db := engine.NewDB()
		db.RegisterTable(federation.DataTable, tab)
		clients = append(clients, federation.NewWorker(fmt.Sprintf("w%d", i), db))
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{})
	if err != nil {
		t.Fatal(err)
	}
	broker := queue.NewBroker(0, 0)
	runner := queue.NewRunner(broker, 2)
	t.Cleanup(runner.Close)
	s := NewServer(m, catalogue.Default(), runner)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, _ := json.Marshal(in)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndCatalogueEndpoints(t *testing.T) {
	_, ts := testServer(t)
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if health["workers"].(float64) != 2 {
		t.Fatalf("workers = %v", health["workers"])
	}

	var paths []map[string]any
	getJSON(t, ts.URL+"/pathologies", &paths)
	if len(paths) != 2 {
		t.Fatalf("pathologies = %d", len(paths))
	}

	var vars []catalogue.Variable
	getJSON(t, ts.URL+"/pathologies/dementia/variables", &vars)
	if len(vars) < 12 {
		t.Fatalf("variables = %d", len(vars))
	}
	getJSON(t, ts.URL+"/pathologies/dementia/variables?search=hippocampus", &vars)
	if len(vars) != 2 {
		t.Fatalf("search hits = %d", len(vars))
	}
	if code := getJSON(t, ts.URL+"/pathologies/nope/variables", nil); code != 404 {
		t.Fatalf("unknown pathology = %d", code)
	}

	var ds map[string][]string
	getJSON(t, ts.URL+"/datasets", &ds)
	if len(ds["edsd"]) != 2 {
		t.Fatalf("datasets = %v", ds)
	}

	var algs []algorithms.Spec
	getJSON(t, ts.URL+"/algorithms", &algs)
	if len(algs) < 15 {
		t.Fatalf("algorithms = %d", len(algs))
	}
}

func TestExperimentLifecycle(t *testing.T) {
	s, ts := testServer(t)
	req := ExperimentRequest{
		Name:      "MMSE ~ hippocampus",
		Algorithm: "linear_regression",
		Request: algorithms.Request{
			Datasets: []string{"edsd"},
			Y:        []string{"minimentalstate"},
			X:        []string{"lefthippocampus"},
		},
	}
	var exp Experiment
	if code := postJSON(t, ts.URL+"/experiments", req, &exp); code != 201 {
		t.Fatalf("create = %d", code)
	}
	if exp.Status != "pending" && exp.Status != "running" {
		t.Fatalf("initial status = %q", exp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := s.WaitForExperiment(ctx, exp.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "success" {
		t.Fatalf("status = %q err = %q", final.Status, final.Error)
	}
	var result map[string]any
	if err := json.Unmarshal(final.Result, &result); err != nil {
		t.Fatal(err)
	}
	model := result["model"].(map[string]any)
	coefs := model["coefficients"].([]any)
	if len(coefs) != 2 {
		t.Fatalf("coefficients = %d", len(coefs))
	}

	// Polling endpoint agrees.
	var fetched Experiment
	if code := getJSON(t, ts.URL+"/experiments/"+exp.UUID, &fetched); code != 200 {
		t.Fatalf("get = %d", code)
	}
	if fetched.Status != "success" {
		t.Fatalf("fetched status = %q", fetched.Status)
	}

	var list []Experiment
	getJSON(t, ts.URL+"/experiments", &list)
	if len(list) != 1 || list[0].UUID != exp.UUID {
		t.Fatalf("list = %+v", list)
	}
}

func TestExperimentValidation(t *testing.T) {
	_, ts := testServer(t)
	// Unknown algorithm.
	code := postJSON(t, ts.URL+"/experiments", ExperimentRequest{Algorithm: "nope"}, nil)
	if code != 422 {
		t.Fatalf("unknown algorithm = %d", code)
	}
	// Unknown dataset.
	code = postJSON(t, ts.URL+"/experiments", ExperimentRequest{
		Algorithm: "descriptive_stats",
		Request:   algorithms.Request{Datasets: []string{"ghost"}, Y: []string{"ab42"}},
	}, nil)
	if code != 422 {
		t.Fatalf("unknown dataset = %d", code)
	}
	// Malformed body.
	resp, err := http.Post(ts.URL+"/experiments", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body = %d", resp.StatusCode)
	}
	// Unknown experiment id.
	if code := getJSON(t, ts.URL+"/experiments/ghost", nil); code != 404 {
		t.Fatalf("unknown experiment = %d", code)
	}
}

func TestExperimentAlgorithmError(t *testing.T) {
	s, ts := testServer(t)
	// linear_regression without X → algorithm-level validation error,
	// recorded on the experiment (not an HTTP failure).
	var exp Experiment
	code := postJSON(t, ts.URL+"/experiments", ExperimentRequest{
		Algorithm: "linear_regression",
		Request:   algorithms.Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}},
	}, &exp)
	if code != 201 {
		t.Fatalf("create = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := s.WaitForExperiment(ctx, exp.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "error" || final.Error == "" {
		t.Fatalf("status = %q error = %q", final.Status, final.Error)
	}
}

func TestConcurrentExperiments(t *testing.T) {
	s, ts := testServer(t)
	var uuids []string
	for i := 0; i < 4; i++ {
		var exp Experiment
		postJSON(t, ts.URL+"/experiments", ExperimentRequest{
			Name:      fmt.Sprintf("desc-%d", i),
			Algorithm: "descriptive_stats",
			Request: algorithms.Request{
				Datasets: []string{"edsd"},
				Y:        []string{"ab42", "p_tau"},
			},
		}, &exp)
		uuids = append(uuids, exp.UUID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range uuids {
		final, err := s.WaitForExperiment(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != "success" {
			t.Fatalf("%s: %q (%s)", id, final.Status, final.Error)
		}
	}
}
