package api

import (
	"net/http"
	"strconv"
	"time"

	"mip/internal/obs"
)

// Tenant-governance endpoints: per-tenant usage accounts (cumulative meters
// plus sliding-window SLO stats) and the tamper-evident audit trail. Both
// are process-global — they aggregate every governed statement and every
// experiment this server has run.

// handleTenants serves every tenant account, sorted by tenant id.
func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants": obs.DefaultTenants.Snapshot(),
	})
}

// handleTenantUsage serves one tenant's account, 404 when the tenant has
// never run anything here.
func (s *Server) handleTenantUsage(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	u, ok := obs.DefaultTenants.Usage(tenant)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown tenant %q", tenant)
		return
	}
	writeJSON(w, http.StatusOK, u)
}

// handleAudit serves the retained audit records, oldest first, filtered by
// the tenant/dataset/kind/since/until/limit query parameters. The response
// carries the live chain head and the result of a full chain verification,
// so a client can detect tampering without replaying the hashes itself.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := obs.AuditFilter{
		Tenant:  q.Get("tenant"),
		Dataset: q.Get("dataset"),
		Kind:    q.Get("kind"),
	}
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad since %q: %v", v, err)
			return
		}
		f.Since = t
	}
	if v := q.Get("until"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad until %q: %v", v, err)
			return
		}
		f.Until = t
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}
	verified := true
	verifyErr := ""
	if err := obs.DefaultAudit.Verify(); err != nil {
		verified = false
		verifyErr = err.Error()
	}
	seq, hash := obs.DefaultAudit.Head()
	resp := map[string]any{
		"records":  obs.DefaultAudit.Entries(f),
		"verified": verified,
		"head_seq": seq,
		"head":     hash,
	}
	if verifyErr != "" {
		resp["verify_error"] = verifyErr
	}
	writeJSON(w, http.StatusOK, resp)
}
