package udf

import (
	"fmt"
	"sync"
)

// The paper's roadmap: "integrating this process with recent research
// advancements to in-engine, performant and stateful Python UDF execution
// using tracing JIT compilation and UDF fusion". This file implements the
// two executable halves of that roadmap item:
//
//   - UDF fusion (CallFused): several UDFs whose relation input is the
//     same query are executed over ONE resolved batch — the engine scans
//     and filters once instead of once per UDF, and every body consumes
//     the same vectorized columns.
//
//   - Stateful execution (StatefulExec): UDFs declaring a State input and
//     output carry node-local state across invocations (e.g. streaming
//     aggregation or incremental model state), managed by the runtime and
//     never shipped off the node.

// FusedResult is one UDF's outputs inside a fused batch.
type FusedResult struct {
	Name    string
	Outputs []Value
}

// CallFused executes the named UDFs over a single shared relation input.
// Every definition must take the relation as its first input; extraArgs
// supplies each UDF's remaining arguments by name (may be nil when a UDF
// only takes the relation). The relation query runs exactly once.
func (e *Exec) CallFused(names []string, relationSQL string, extraArgs map[string][]Value) ([]FusedResult, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("udf: CallFused needs at least one UDF")
	}
	// Validate signatures before paying for the scan.
	defs := make([]*Def, len(names))
	for i, n := range names {
		d := e.Registry.Lookup(n)
		if d == nil {
			return nil, fmt.Errorf("udf: unknown function %q", n)
		}
		if len(d.Inputs) == 0 || d.Inputs[0].Kind != Relation {
			return nil, fmt.Errorf("udf %s: fused execution requires a leading relation input", n)
		}
		if want, got := len(d.Inputs)-1, len(extraArgs[n]); want != got {
			return nil, fmt.Errorf("udf %s: got %d extra arguments, want %d", n, got, want)
		}
		defs[i] = d
	}

	// One scan for the whole batch.
	ctx := &Ctx{DB: e.DB}
	rel, err := ctx.Loopback(relationSQL)
	if err != nil {
		return nil, fmt.Errorf("udf: resolving fused relation: %w", err)
	}

	out := make([]FusedResult, len(names))
	for i, d := range defs {
		if len(d.Inputs[0].Schema) > 0 && !rel.Schema().Equal(d.Inputs[0].Schema) {
			return nil, fmt.Errorf("udf %s: fused relation schema mismatch", d.Name)
		}
		args := append([]Value{RelationValue(rel)}, extraArgs[d.Name]...)
		res, err := d.Body(ctx, args)
		if err != nil {
			return nil, fmt.Errorf("udf %s: %w", d.Name, err)
		}
		if len(res) != len(d.Outputs) {
			return nil, fmt.Errorf("udf %s: body returned %d values, declared %d", d.Name, len(res), len(d.Outputs))
		}
		for oi, spec := range d.Outputs {
			if spec.Kind == Relation && res[oi].Table != nil {
				e.DB.RegisterTable(spec.Name, res[oi].Table)
			}
		}
		out[i] = FusedResult{Name: d.Name, Outputs: res}
	}
	return out, nil
}

// LoopbackCountOf reports how many loopback queries a context issued —
// exposed so the fusion tests/benchmarks can assert the single-scan
// property.
func LoopbackCountOf(c *Ctx) int { return c.LoopbackCount }

// StatefulExec wraps Exec with a per-UDF state store: definitions whose
// LAST input has Kind State receive their previous state (zero Value on
// first call), and definitions whose FIRST output has Kind State have it
// captured back into the store. State never leaves the node.
type StatefulExec struct {
	Exec *Exec

	mu    sync.Mutex
	state map[string]any
}

// NewStatefulExec wraps an executor.
func NewStatefulExec(e *Exec) *StatefulExec {
	return &StatefulExec{Exec: e, state: make(map[string]any)}
}

// Call invokes the UDF, threading stored state through the declared State
// slots. The state key defaults to the UDF name; use CallKeyed to maintain
// independent streams.
func (s *StatefulExec) Call(name string, inputs []Value, relationQueries map[string]string) ([]Value, error) {
	return s.CallKeyed(name, name, inputs, relationQueries)
}

// CallKeyed is Call with an explicit state key (one UDF, many streams).
func (s *StatefulExec) CallKeyed(stateKey, name string, inputs []Value, relationQueries map[string]string) ([]Value, error) {
	d := s.Exec.Registry.Lookup(name)
	if d == nil {
		return nil, fmt.Errorf("udf: unknown function %q", name)
	}
	args := append([]Value(nil), inputs...)
	stateIn := -1
	if n := len(d.Inputs); n > 0 && d.Inputs[n-1].Kind == State {
		stateIn = n - 1
	}
	if stateIn >= 0 {
		s.mu.Lock()
		prior := s.state[stateKey]
		s.mu.Unlock()
		for len(args) <= stateIn {
			args = append(args, Value{})
		}
		args[stateIn] = StateValue(prior)
	}
	outs, err := s.Exec.Call(name, args, relationQueries)
	if err != nil {
		return nil, err
	}
	if len(d.Outputs) > 0 && d.Outputs[0].Kind == State {
		s.mu.Lock()
		s.state[stateKey] = outs[0].State
		s.mu.Unlock()
	}
	return outs, nil
}

// Reset clears one state stream (empty key clears everything).
func (s *StatefulExec) Reset(stateKey string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if stateKey == "" {
		s.state = make(map[string]any)
		return
	}
	delete(s.state, stateKey)
}
