// Package udf reproduces MIP's UDFGenerator: algorithm developers write
// procedural local-computation steps ("Python functions" in the paper, Go
// functions here) with declared input/output types; the generator JIT-wraps
// each step as a SQL UDF and executes it inside the data engine, so local
// steps benefit from vectorized, in-database execution. Loopback queries —
// SQL issued from inside a running UDF — handle multiple inputs and
// outputs, exactly as in the paper.
package udf

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mip/internal/engine"
)

// Kind classifies a UDF input or output, mirroring MIP's udfgen decorator
// vocabulary.
type Kind int

// UDF I/O kinds.
const (
	Relation Kind = iota // a table (columns of the primary data)
	Tensor               // a numeric array with a shape
	Scalar               // a single value
	Transfer             // a JSON-able dict shipped between nodes
	State                // opaque node-local state, never shipped
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Relation:
		return "relation"
	case Tensor:
		return "tensor"
	case Scalar:
		return "scalar"
	case Transfer:
		return "transfer"
	case State:
		return "state"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IOSpec declares the type of one UDF input or output.
type IOSpec struct {
	Name   string
	Kind   Kind
	Schema engine.Schema // Relation only: expected columns (nil = any)
}

// Value is a runtime UDF argument or result. Exactly one field is
// populated, matching the IOSpec kind.
type Value struct {
	Table    *engine.Table  // Relation
	Tensor   []float64      // Tensor (row-major)
	Shape    []int          // Tensor shape
	Scalar   any            // Scalar
	Transfer map[string]any // Transfer
	State    any            // State
}

// RelationValue wraps a table.
func RelationValue(t *engine.Table) Value { return Value{Table: t} }

// TensorValue wraps a numeric array.
func TensorValue(data []float64, shape ...int) Value { return Value{Tensor: data, Shape: shape} }

// ScalarValue wraps a single value.
func ScalarValue(v any) Value { return Value{Scalar: v} }

// TransferValue wraps a transfer dict.
func TransferValue(m map[string]any) Value { return Value{Transfer: m} }

// StateValue wraps node-local state.
func StateValue(s any) Value { return Value{State: s} }

// Ctx is the execution context passed to a running UDF. Loopback lets the
// UDF issue SQL against the hosting engine mid-execution (MonetDB's
// "SQL loopback queries").
type Ctx struct {
	DB *engine.DB
	// Context, when set, scopes every loopback query: cancelling it aborts
	// the in-engine execution mid-batch (end-to-end query cancellation).
	Context context.Context
	// LoopbackCount tallies loopback queries, for tests and tracing.
	LoopbackCount int
}

// Loopback executes SQL inside the engine hosting the UDF.
func (c *Ctx) Loopback(sql string) (*engine.Table, error) {
	c.LoopbackCount++
	if c.Context != nil {
		return c.DB.QueryCtx(c.Context, sql)
	}
	return c.DB.Query(sql)
}

// Func is the procedural body of a UDF.
type Func func(ctx *Ctx, args []Value) ([]Value, error)

// Def is a declared UDF: the procedural body plus its typed signature —
// the information MIP's Python decorator carries.
type Def struct {
	Name    string
	Doc     string
	Inputs  []IOSpec
	Outputs []IOSpec
	Body    Func
}

// Validate checks the definition is well-formed.
func (d *Def) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("udf: definition needs a name")
	}
	if d.Body == nil {
		return fmt.Errorf("udf %s: missing body", d.Name)
	}
	for _, o := range d.Outputs {
		if o.Kind == Relation && o.Name == "" {
			return fmt.Errorf("udf %s: relation outputs need names", d.Name)
		}
	}
	return nil
}

// Registry holds the declared UDFs of a node.
type Registry struct {
	mu   sync.RWMutex
	defs map[string]*Def
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[string]*Def)}
}

// Register adds a definition; duplicate names are an error.
func (r *Registry) Register(d *Def) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.defs[d.Name]; ok {
		return fmt.Errorf("udf: %q already registered", d.Name)
	}
	r.defs[d.Name] = d
	return nil
}

// MustRegister registers or panics; for package-init algorithm tables.
func (r *Registry) MustRegister(d *Def) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Lookup returns the named definition, or nil.
func (r *Registry) Lookup(name string) *Def {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defs[name]
}

// Names lists registered UDFs, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.defs))
	for n := range r.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GenerateSQL renders the SQL that the UDF-to-SQL translation produces for
// a definition: a CREATE FUNCTION wrapper plus the invocation statement.
// The text documents what runs in the engine; Exec performs the equivalent
// natively.
func GenerateSQL(d *Def, inputTables []string, outputTable string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE OR REPLACE FUNCTION %s(", d.Name)
	for i, in := range d.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", in.Name, sqlTypeOf(in))
	}
	b.WriteString(")\nRETURNS TABLE(")
	for i, out := range d.Outputs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", out.Name, sqlTypeOf(out))
	}
	b.WriteString(")\nLANGUAGE NATIVE -- JIT-generated wrapper\n{ body: ")
	b.WriteString(d.Name)
	b.WriteString(" };\n")
	fmt.Fprintf(&b, "SELECT * FROM %s(", d.Name)
	for i, t := range inputTables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t)
	}
	b.WriteString(")")
	if outputTable != "" {
		fmt.Fprintf(&b, " INTO %s", outputTable)
	}
	b.WriteString(";")
	return b.String()
}

func sqlTypeOf(s IOSpec) string {
	switch s.Kind {
	case Relation:
		if len(s.Schema) == 0 {
			return "TABLE(*)"
		}
		cols := make([]string, len(s.Schema))
		for i, c := range s.Schema {
			cols[i] = c.Name + " " + c.Type.String()
		}
		return "TABLE(" + strings.Join(cols, ", ") + ")"
	case Tensor:
		return "DOUBLE[]"
	case Scalar:
		return "DOUBLE"
	case Transfer:
		return "JSON"
	case State:
		return "STATE"
	}
	return "UNKNOWN"
}

// Exec runs a registered UDF inside the given engine. Relation arguments
// may be passed either directly (Value.Table) or by SQL text in
// RelationQueries, which the executor resolves against the engine before
// invoking the body — this is how the generated wrapper feeds the UDF with
// vectorized columns.
type Exec struct {
	Registry *Registry
	DB       *engine.DB
}

// Call invokes the named UDF. relationQueries maps input names to SQL;
// inputs supplies the remaining arguments by position (entries for
// relation inputs resolved via SQL may be zero Values).
func (e *Exec) Call(name string, inputs []Value, relationQueries map[string]string) ([]Value, error) {
	return e.CallCtx(context.Background(), name, inputs, relationQueries)
}

// CallCtx is Call with a caller-supplied context that scopes the UDF's
// loopback queries; cancelling it aborts the data-resolution query (and any
// loopbacks the body issues) at the next batch boundary.
func (e *Exec) CallCtx(cctx context.Context, name string, inputs []Value, relationQueries map[string]string) ([]Value, error) {
	d := e.Registry.Lookup(name)
	if d == nil {
		return nil, fmt.Errorf("udf: unknown function %q", name)
	}
	if len(inputs) != len(d.Inputs) {
		return nil, fmt.Errorf("udf %s: got %d arguments, want %d", name, len(inputs), len(d.Inputs))
	}
	args := make([]Value, len(inputs))
	copy(args, inputs)
	ctx := &Ctx{DB: e.DB, Context: cctx}
	for i, spec := range d.Inputs {
		if spec.Kind != Relation {
			continue
		}
		if sql, ok := relationQueries[spec.Name]; ok {
			t, err := ctx.Loopback(sql)
			if err != nil {
				return nil, fmt.Errorf("udf %s: resolving relation %q: %w", name, spec.Name, err)
			}
			args[i] = RelationValue(t)
		}
		if args[i].Table == nil {
			return nil, fmt.Errorf("udf %s: relation input %q not provided", name, spec.Name)
		}
		if len(spec.Schema) > 0 && !args[i].Table.Schema().Equal(spec.Schema) {
			return nil, fmt.Errorf("udf %s: relation %q schema mismatch: got %v, want %v",
				name, spec.Name, args[i].Table.Schema().Names(), spec.Schema.Names())
		}
	}
	outs, err := d.Body(ctx, args)
	if err != nil {
		return nil, fmt.Errorf("udf %s: %w", name, err)
	}
	if len(outs) != len(d.Outputs) {
		return nil, fmt.Errorf("udf %s: body returned %d values, declared %d", name, len(outs), len(d.Outputs))
	}
	// Relation outputs are materialized as engine tables so downstream
	// steps can reference them by name (the "pointer to the actual data"
	// the paper describes).
	for i, spec := range d.Outputs {
		if spec.Kind == Relation && outs[i].Table != nil {
			e.DB.RegisterTable(spec.Name, outs[i].Table)
		}
	}
	return outs, nil
}
