package udf

import (
	"testing"

	"mip/internal/engine"
)

// fusionRegistry registers three UDFs sharing the relation-first shape.
func fusionRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	colSum := func(col string) Func {
		return func(ctx *Ctx, args []Value) ([]Value, error) {
			tab := args[0].Table
			var s float64
			v := tab.ColByName(col).CastFloat64()
			for i := 0; i < v.Len(); i++ {
				if !v.IsNull(i) {
					s += v.Float64s()[i]
				}
			}
			return []Value{ScalarValue(s)}, nil
		}
	}
	for _, col := range []string{"x", "y"} {
		r.MustRegister(&Def{
			Name:    "sum_" + col,
			Inputs:  []IOSpec{{Name: "data", Kind: Relation}},
			Outputs: []IOSpec{{Name: "s", Kind: Scalar}},
			Body:    colSum(col),
		})
	}
	r.MustRegister(&Def{
		Name: "scaled_count",
		Inputs: []IOSpec{
			{Name: "data", Kind: Relation},
			{Name: "factor", Kind: Scalar},
		},
		Outputs: []IOSpec{{Name: "n", Kind: Scalar}},
		Body: func(ctx *Ctx, args []Value) ([]Value, error) {
			f := args[1].Scalar.(float64)
			return []Value{ScalarValue(float64(args[0].Table.NumRows()) * f)}, nil
		},
	})
	return r
}

func TestCallFused(t *testing.T) {
	db := testDB(t)
	e := &Exec{Registry: fusionRegistry(t), DB: db}
	res, err := e.CallFused(
		[]string{"sum_x", "sum_y", "scaled_count"},
		`SELECT x, y FROM obs`,
		map[string][]Value{"scaled_count": {ScalarValue(2.0)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Outputs[0].Scalar != 10.0 { // x: 1+2+3+4
		t.Fatalf("sum_x = %v", res[0].Outputs[0].Scalar)
	}
	if res[1].Outputs[0].Scalar != 24.0 { // y: 3+5+7+9
		t.Fatalf("sum_y = %v", res[1].Outputs[0].Scalar)
	}
	if res[2].Outputs[0].Scalar != 8.0 { // 4 rows × 2
		t.Fatalf("scaled_count = %v", res[2].Outputs[0].Scalar)
	}
}

func TestCallFusedValidation(t *testing.T) {
	db := testDB(t)
	e := &Exec{Registry: fusionRegistry(t), DB: db}
	if _, err := e.CallFused(nil, "SELECT x FROM obs", nil); err == nil {
		t.Fatal("empty batch must fail")
	}
	if _, err := e.CallFused([]string{"ghost"}, "SELECT x FROM obs", nil); err == nil {
		t.Fatal("unknown UDF must fail")
	}
	if _, err := e.CallFused([]string{"scaled_count"}, "SELECT x FROM obs", nil); err == nil {
		t.Fatal("missing extra args must fail")
	}
	if _, err := e.CallFused([]string{"sum_x"}, "SELECT broken FROM", nil); err == nil {
		t.Fatal("bad relation SQL must fail")
	}
	// Non-relation-first UDFs are rejected.
	r := fusionRegistry(t)
	r.MustRegister(&Def{
		Name:    "scalar_only",
		Inputs:  []IOSpec{{Name: "k", Kind: Scalar}},
		Outputs: []IOSpec{{Name: "o", Kind: Scalar}},
		Body: func(ctx *Ctx, args []Value) ([]Value, error) {
			return []Value{args[0]}, nil
		},
	})
	e2 := &Exec{Registry: r, DB: db}
	if _, err := e2.CallFused([]string{"scalar_only"}, "SELECT x FROM obs", map[string][]Value{"scalar_only": {ScalarValue(1.0)}}); err == nil {
		t.Fatal("non-relation-first UDF must fail")
	}
}

// The point of fusion: one scan for N UDFs instead of N scans.
func TestFusionSingleScan(t *testing.T) {
	db := testDB(t)
	e := &Exec{Registry: fusionRegistry(t), DB: db}

	before := db.QueryCount()
	res, err := e.CallFused([]string{"sum_x", "sum_y"}, `SELECT x, y FROM obs`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.QueryCount() - before; got != 1 {
		t.Fatalf("fused batch issued %d queries, want 1", got)
	}

	before = db.QueryCount()
	a, err := e.Call("sum_x", make([]Value, 1), map[string]string{"data": `SELECT x, y FROM obs`})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Call("sum_y", make([]Value, 1), map[string]string{"data": `SELECT x, y FROM obs`})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.QueryCount() - before; got != 2 {
		t.Fatalf("unfused calls issued %d queries, want 2", got)
	}
	if res[0].Outputs[0].Scalar != a[0].Scalar || res[1].Outputs[0].Scalar != b[0].Scalar {
		t.Fatal("fused and unfused results differ")
	}
}

func TestStatefulExec(t *testing.T) {
	db := testDB(t)
	r := NewRegistry()
	// Streaming counter: state accumulates row counts across calls.
	r.MustRegister(&Def{
		Name: "stream_count",
		Inputs: []IOSpec{
			{Name: "data", Kind: Relation},
			{Name: "prior", Kind: State},
		},
		Outputs: []IOSpec{
			{Name: "state", Kind: State},
			{Name: "total", Kind: Scalar},
		},
		Body: func(ctx *Ctx, args []Value) ([]Value, error) {
			total := 0.0
			if args[1].State != nil {
				total = args[1].State.(float64)
			}
			total += float64(args[0].Table.NumRows())
			return []Value{StateValue(total), ScalarValue(total)}, nil
		},
	})
	se := NewStatefulExec(&Exec{Registry: r, DB: db})

	for i, want := range []float64{4, 8, 12} {
		outs, err := se.Call("stream_count", make([]Value, 2), map[string]string{"data": `SELECT x FROM obs`})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if outs[1].Scalar != want {
			t.Fatalf("call %d: total = %v, want %v", i, outs[1].Scalar, want)
		}
	}

	// Independent keyed streams.
	outs, err := se.CallKeyed("other", "stream_count", make([]Value, 2), map[string]string{"data": `SELECT x FROM obs`})
	if err != nil {
		t.Fatal(err)
	}
	if outs[1].Scalar != 4.0 {
		t.Fatalf("fresh stream total = %v", outs[1].Scalar)
	}

	// Reset clears state.
	se.Reset("stream_count")
	outs, _ = se.Call("stream_count", make([]Value, 2), map[string]string{"data": `SELECT x FROM obs`})
	if outs[1].Scalar != 4.0 {
		t.Fatalf("after reset total = %v", outs[1].Scalar)
	}
	se.Reset("")
	outs, _ = se.CallKeyed("other", "stream_count", make([]Value, 2), map[string]string{"data": `SELECT x FROM obs`})
	if outs[1].Scalar != 4.0 {
		t.Fatalf("after full reset total = %v", outs[1].Scalar)
	}
}

func TestStatefulExecUnknown(t *testing.T) {
	se := NewStatefulExec(&Exec{Registry: NewRegistry(), DB: engine.NewDB()})
	if _, err := se.Call("ghost", nil, nil); err == nil {
		t.Fatal("unknown UDF must fail")
	}
}
