package udf

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"mip/internal/engine"
)

func testDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	for _, s := range []string{
		`CREATE TABLE obs (x DOUBLE, y DOUBLE)`,
		`INSERT INTO obs VALUES (1, 3), (2, 5), (3, 7), (4, 9)`,
	} {
		if _, err := db.Query(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// sumUDF computes column sums of its relation input — the simplest local
// step shape (relation in, transfer out).
var sumUDF = &Def{
	Name:   "col_sums",
	Doc:    "sums every DOUBLE column of the input relation",
	Inputs: []IOSpec{{Name: "data", Kind: Relation}},
	Outputs: []IOSpec{
		{Name: "sums", Kind: Transfer},
	},
	Body: func(ctx *Ctx, args []Value) ([]Value, error) {
		tab := args[0].Table
		out := map[string]any{}
		for i, col := range tab.Schema() {
			if col.Type != engine.Float64 {
				continue
			}
			var s float64
			v := tab.Col(i)
			for r := 0; r < v.Len(); r++ {
				if !v.IsNull(r) {
					s += v.Float64s()[r]
				}
			}
			out[col.Name] = s
		}
		return []Value{TransferValue(out)}, nil
	},
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(sumUDF); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(sumUDF); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if r.Lookup("col_sums") == nil || r.Lookup("nope") != nil {
		t.Fatal("lookup broken")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "col_sums" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegisterInvalid(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Def{Name: "", Body: sumUDF.Body}); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := r.Register(&Def{Name: "x"}); err == nil {
		t.Fatal("missing body should fail")
	}
	if err := r.Register(&Def{Name: "x", Body: sumUDF.Body,
		Outputs: []IOSpec{{Kind: Relation}}}); err == nil {
		t.Fatal("unnamed relation output should fail")
	}
}

func TestExecWithRelationQuery(t *testing.T) {
	db := testDB(t)
	r := NewRegistry()
	r.MustRegister(sumUDF)
	e := &Exec{Registry: r, DB: db}
	outs, err := e.Call("col_sums", make([]Value, 1), map[string]string{
		"data": `SELECT x, y FROM obs WHERE x > 1`,
	})
	if err != nil {
		t.Fatal(err)
	}
	sums := outs[0].Transfer
	if sums["x"] != 9.0 || sums["y"] != 21.0 {
		t.Fatalf("sums = %v", sums)
	}
}

func TestExecDirectRelation(t *testing.T) {
	db := testDB(t)
	r := NewRegistry()
	r.MustRegister(sumUDF)
	e := &Exec{Registry: r, DB: db}
	tab, err := db.Query(`SELECT x, y FROM obs`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Call("col_sums", []Value{RelationValue(tab)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Transfer["x"] != 10.0 {
		t.Fatalf("sums = %v", outs[0].Transfer)
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	r := NewRegistry()
	r.MustRegister(sumUDF)
	e := &Exec{Registry: r, DB: db}
	if _, err := e.Call("nope", nil, nil); err == nil {
		t.Fatal("unknown UDF should fail")
	}
	if _, err := e.Call("col_sums", nil, nil); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := e.Call("col_sums", make([]Value, 1), nil); err == nil {
		t.Fatal("missing relation input should fail")
	}
	if _, err := e.Call("col_sums", make([]Value, 1), map[string]string{"data": "SELECT broken"}); err == nil {
		t.Fatal("bad relation SQL should fail")
	}
}

func TestSchemaCheck(t *testing.T) {
	db := testDB(t)
	strict := &Def{
		Name:   "strict",
		Inputs: []IOSpec{{Name: "data", Kind: Relation, Schema: engine.Schema{{Name: "a", Type: engine.Float64}}}},
		Outputs: []IOSpec{
			{Name: "out", Kind: Scalar},
		},
		Body: func(ctx *Ctx, args []Value) ([]Value, error) {
			return []Value{ScalarValue(1.0)}, nil
		},
	}
	r := NewRegistry()
	r.MustRegister(strict)
	e := &Exec{Registry: r, DB: db}
	if _, err := e.Call("strict", make([]Value, 1), map[string]string{"data": `SELECT x, y FROM obs`}); err == nil {
		t.Fatal("schema mismatch should fail")
	}
	if _, err := e.Call("strict", make([]Value, 1), map[string]string{"data": `SELECT x AS a FROM obs`}); err != nil {
		t.Fatalf("matching schema should pass: %v", err)
	}
}

// A UDF using loopback queries mid-execution: computes residual variance by
// first asking the engine for the means (as the paper's linear regression
// local step does via SQL loopback).
func TestLoopbackQueries(t *testing.T) {
	db := testDB(t)
	lb := &Def{
		Name:   "resid_var",
		Inputs: []IOSpec{{Name: "table_name", Kind: Scalar}},
		Outputs: []IOSpec{
			{Name: "result", Kind: Transfer},
		},
		Body: func(ctx *Ctx, args []Value) ([]Value, error) {
			name := args[0].Scalar.(string)
			means, err := ctx.Loopback(fmt.Sprintf(`SELECT avg(x) AS mx, avg(y) AS my FROM %s`, name))
			if err != nil {
				return nil, err
			}
			mx := means.ColByName("mx").Float64s()[0]
			rows, err := ctx.Loopback(fmt.Sprintf(`SELECT sum((x - %v) * (x - %v)) AS ss, count(x) AS n FROM %s`, mx, mx, name))
			if err != nil {
				return nil, err
			}
			ss := rows.ColByName("ss").Float64s()[0]
			n := float64(rows.ColByName("n").Int64s()[0])
			return []Value{TransferValue(map[string]any{"var": ss / (n - 1)})}, nil
		},
	}
	r := NewRegistry()
	r.MustRegister(lb)
	e := &Exec{Registry: r, DB: db}
	outs, err := e.Call("resid_var", []Value{ScalarValue("obs")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := outs[0].Transfer["var"].(float64)
	want := 5.0 / 3.0 // var of 1,2,3,4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("var = %v, want %v", got, want)
	}
}

// Relation outputs must be registered back into the engine so later steps
// can address them by name (results as pointers, per the paper).
func TestRelationOutputMaterialized(t *testing.T) {
	db := testDB(t)
	maker := &Def{
		Name:    "make_squares",
		Inputs:  []IOSpec{{Name: "data", Kind: Relation}},
		Outputs: []IOSpec{{Name: "squares", Kind: Relation}},
		Body: func(ctx *Ctx, args []Value) ([]Value, error) {
			in := args[0].Table
			out := engine.NewTable(engine.Schema{{Name: "sq", Type: engine.Float64}})
			xs := in.ColByName("x").Float64s()
			for _, x := range xs {
				if err := out.AppendRow(x * x); err != nil {
					return nil, err
				}
			}
			return []Value{RelationValue(out)}, nil
		},
	}
	r := NewRegistry()
	r.MustRegister(maker)
	e := &Exec{Registry: r, DB: db}
	if _, err := e.Call("make_squares", make([]Value, 1), map[string]string{"data": `SELECT x FROM obs`}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT sum(sq) AS s FROM squares`)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Col(0).Float64s()[0]; s != 30 {
		t.Fatalf("sum of squares = %v", s)
	}
}

func TestGenerateSQL(t *testing.T) {
	sql := GenerateSQL(sumUDF, []string{"model_data"}, "result_0")
	for _, want := range []string{"CREATE OR REPLACE FUNCTION col_sums", "RETURNS TABLE(sums JSON)", "SELECT * FROM col_sums(model_data) INTO result_0;"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("generated SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{Relation, Tensor, Scalar, Transfer, State}
	names := []string{"relation", "tensor", "scalar", "transfer", "state"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Fatalf("Kind %d = %q", i, k.String())
		}
	}
}
