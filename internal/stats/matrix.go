// Package stats provides the numerical substrate for MIP's federated
// algorithms: dense matrices with the factorizations the analytics need
// (Cholesky, QR, symmetric eigendecomposition), probability distributions
// (normal, Student's t, F, chi-squared) with CDFs and quantiles, and random
// variate generation for the differential-privacy mechanisms.
//
// The package replaces the NumPy/SciPy layer used by the paper's Python
// implementation; it is deliberately dependency-free (stdlib only).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("stats: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) in a matrix without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("stats: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v into the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Data returns the underlying row-major storage. Mutating it mutates the
// matrix.
func (m *Dense) Data() []float64 { return m.data }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("stats: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("stats: dimension mismatch %dx%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.Row(i)
		var s float64
		for j, v := range mi {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by a, in place, and returns m.
func (m *Dense) Scale(a float64) *Dense {
	for i := range m.data {
		m.data[i] *= a
	}
	return m
}

// AddMat adds b element-wise, in place, and returns m.
func (m *Dense) AddMat(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic("stats: dimension mismatch in AddMat")
	}
	for i, v := range b.data {
		m.data[i] += v
	}
	return m
}

// SubMat subtracts b element-wise, in place, and returns m.
func (m *Dense) SubMat(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic("stats: dimension mismatch in SubMat")
	}
	for i, v := range b.data {
		m.data[i] -= v
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with v on the diagonal.
func Diag(v []float64) *Dense {
	m := NewDense(len(v), len(v))
	for i, x := range v {
		m.Set(i, i, x)
	}
	return m
}

// XtX returns Xᵀ·X for a design matrix X, exploiting symmetry.
func XtX(x *Dense) *Dense {
	out := NewDense(x.cols, x.cols)
	for i := 0; i < x.rows; i++ {
		ri := x.Row(i)
		for a, va := range ri {
			if va == 0 {
				continue
			}
			oa := out.Row(a)
			for b := a; b < len(ri); b++ {
				oa[b] += va * ri[b]
			}
		}
	}
	for a := 0; a < out.rows; a++ {
		for b := 0; b < a; b++ {
			out.Set(a, b, out.At(b, a))
		}
	}
	return out
}

// XtY returns Xᵀ·y for a design matrix X and response vector y.
func XtY(x *Dense, y []float64) []float64 {
	if x.rows != len(y) {
		panic("stats: dimension mismatch in XtY")
	}
	out := make([]float64, x.cols)
	for i := 0; i < x.rows; i++ {
		ri := x.Row(i)
		yi := y[i]
		if yi == 0 {
			continue
		}
		for j, v := range ri {
			out[j] += v * yi
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b. It is used by equivalence tests (federated vs pooled).
func MaxAbsDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		return math.Inf(1)
	}
	var m float64
	for i, v := range a.data {
		d := math.Abs(v - b.data[i])
		if d > m {
			m = d
		}
	}
	return m
}
