package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFReferenceValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileInverse(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-5, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 1 - 1e-6} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEq(got, p, 1e-10) {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile endpoints should be ±Inf")
	}
}

func TestStudentTCDFReference(t *testing.T) {
	// Reference values from R: pt(q, df).
	cases := []struct{ q, df, want float64 }{
		{0, 5, 0.5},
		{1, 1, 0.75},
		{2, 10, 0.963306},
		{-2.5, 3, 0.0438533235},
		{1.812461, 10, 0.95},
	}
	for _, c := range cases {
		if got := StudentTCDF(c.q, c.df); !almostEq(got, c.want, 1e-5) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.q, c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileInverse(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 10, 30, 120} {
		for _, p := range []float64{0.005, 0.025, 0.05, 0.5, 0.95, 0.975, 0.995} {
			q := StudentTQuantile(p, df)
			if got := StudentTCDF(q, df); !almostEq(got, p, 1e-8) {
				t.Errorf("df=%v p=%v: CDF(Q)=%v", df, p, got)
			}
		}
	}
}

func TestStudentTLargeDFApproachesNormal(t *testing.T) {
	if d := math.Abs(StudentTCDF(1.5, 1e6) - NormalCDF(1.5)); d > 1e-5 {
		t.Errorf("t(1e6) vs normal diff = %g", d)
	}
}

func TestFCDFReference(t *testing.T) {
	// Reference values from R: pf(q, d1, d2).
	cases := []struct{ q, d1, d2, want float64 }{
		{1, 1, 1, 0.5},
		{3.888529, 2, 10, 0.9436750839}, // verified by numerical integration
		{4.964603, 1, 10, 0.95},         // qf(0.95,1,10)=4.964603
		{2.5, 5, 20, 0.9350729539},      // verified by numerical integration
	}
	for _, c := range cases {
		if got := FCDF(c.q, c.d1, c.d2); !almostEq(got, c.want, 1e-5) {
			t.Errorf("FCDF(%v,%v,%v) = %v, want %v", c.q, c.d1, c.d2, got, c.want)
		}
	}
}

func TestFQuantileInverse(t *testing.T) {
	for _, d1 := range []float64{1, 3, 10} {
		for _, d2 := range []float64{2, 8, 40} {
			for _, p := range []float64{0.05, 0.5, 0.95, 0.99} {
				q := FQuantile(p, d1, d2)
				if got := FCDF(q, d1, d2); !almostEq(got, p, 1e-8) {
					t.Errorf("d1=%v d2=%v p=%v: CDF(Q)=%v", d1, d2, p, got)
				}
			}
		}
	}
}

func TestChiSquaredReference(t *testing.T) {
	// Reference values from R: pchisq(q, df).
	cases := []struct{ q, df, want float64 }{
		{3.841459, 1, 0.95},
		{5.991465, 2, 0.95},
		{1, 1, 0.6826895},
		{10, 5, 0.9247648},
	}
	for _, c := range cases {
		if got := ChiSquaredCDF(c.q, c.df); !almostEq(got, c.want, 1e-6) {
			t.Errorf("ChiSquaredCDF(%v, %v) = %v, want %v", c.q, c.df, got, c.want)
		}
	}
}

func TestChiSquaredQuantileInverse(t *testing.T) {
	for _, df := range []float64{1, 2, 7, 25} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.95, 0.999} {
			q := ChiSquaredQuantile(p, df)
			if got := ChiSquaredCDF(q, df); !almostEq(got, p, 1e-9) {
				t.Errorf("df=%v p=%v: CDF(Q)=%v", df, p, got)
			}
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 − I_{1−x}(b,a)
	f := func(seed int64) bool {
		g := NewRNG(seed)
		x := g.Float64()
		a := 0.5 + 5*g.Float64()
		b := 0.5 + 5*g.Float64()
		return math.Abs(RegIncBeta(x, a, b)-(1-RegIncBeta(1-x, b, a))) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncGammaComplement(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := 0.5 + 10*g.Float64()
		x := 20 * g.Float64()
		return math.Abs(RegIncGammaLower(a, x)+RegIncGammaUpper(a, x)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := g.Normal(0, 2)
		b := a + math.Abs(g.Normal(0, 2)) + 1e-9
		df := 1 + 20*g.Float64()
		return StudentTCDF(a, df) <= StudentTCDF(b, df)+1e-14 &&
			NormalCDF(a) <= NormalCDF(b)+1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
