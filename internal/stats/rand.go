package stats

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded source with the variate generators the platform needs:
// Gaussian and Laplace noise for differential privacy, plus helpers for the
// synthetic cohort generators. A nil-safe constructor keeps call sites terse.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform 64-bit integer.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// Laplace returns a Laplace variate with the given location and scale b
// (density (1/2b)·exp(−|x−μ|/b)).
func (g *RNG) Laplace(mu, b float64) float64 {
	u := g.r.Float64() - 0.5
	return mu - b*math.Copysign(math.Log(1-2*math.Abs(u)), u)
}

// Exponential returns an exponential variate with the given rate λ.
func (g *RNG) Exponential(rate float64) float64 {
	return g.r.ExpFloat64() / rate
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia–Tsang
// method (with the shape<1 boost). The SMPC layer uses it to split Laplace
// noise into per-node Gamma differences (Laplace is infinitely divisible:
// Lap(b) = Σᵢ (G1ᵢ − G2ᵢ) with Gᵢ ~ Gamma(1/n, b)).
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Categorical draws an index from the (unnormalized) weights.
func (g *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := g.r.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the first n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// MultivariateNormal draws from N(mean, cov) via the Cholesky factor of cov.
// It returns an error only if cov is not positive definite.
func (g *RNG) MultivariateNormal(mean []float64, cov *Dense) ([]float64, error) {
	l, err := Cholesky(cov)
	if err != nil {
		return nil, err
	}
	n := len(mean)
	z := make([]float64, n)
	for i := range z {
		z[i] = g.r.NormFloat64()
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := mean[i]
		for j := 0; j <= i; j++ {
			s += l.At(i, j) * z[j]
		}
		out[i] = s
	}
	return out, nil
}
