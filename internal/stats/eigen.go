package stats

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// corresponding eigenvectors as the columns of the returned matrix.
//
// PCA (one of MIP's integrated algorithms) diagonalizes the federated
// covariance/correlation matrix with this routine.
func EigenSym(m *Dense) (values []float64, vectors *Dense, err error) {
	if m.rows != m.cols {
		return nil, nil, errors.New("stats: EigenSym of non-square matrix")
	}
	n := m.rows
	a := m.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * a.At(i, j) * a.At(i, j)
			}
		}
		if math.Sqrt(off) < 1e-12*(1+frobenius(a)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := range values {
		values[i] = a.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return values[idx[x]] > values[idx[y]] })
	sortedVals := make([]float64, n)
	vectors = NewDense(n, n)
	for col, src := range idx {
		sortedVals[col] = values[src]
		for row := 0; row < n; row++ {
			vectors.Set(row, col, v.At(row, src))
		}
	}
	return sortedVals, vectors, nil
}

func frobenius(m *Dense) float64 {
	var s float64
	for _, x := range m.data {
		s += x * x
	}
	return math.Sqrt(s)
}

// rotate applies the Jacobi rotation J(p,q,θ) to a (two-sided) and v
// (one-sided accumulation of eigenvectors).
func rotate(a, v *Dense, p, q int, c, s float64) {
	n := a.rows
	for k := 0; k < n; k++ {
		akp, akq := a.At(k, p), a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk, aqk := a.At(p, k), a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}
