package stats

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system is singular or a matrix is
// not positive definite to working precision.
var ErrSingular = errors.New("stats: matrix is singular or not positive definite")

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ.
// m must be symmetric positive definite.
func Cholesky(m *Dense) (*Dense, error) {
	if m.rows != m.cols {
		return nil, errors.New("stats: Cholesky of non-square matrix")
	}
	n := m.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveSPD solves m·x = b for symmetric positive definite m via Cholesky.
func SolveSPD(m *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	return solveCholesky(l, b), nil
}

func solveCholesky(l *Dense, b []float64) []float64 {
	n := l.rows
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// InvSPD returns the inverse of a symmetric positive definite matrix.
func InvSPD(m *Dense) (*Dense, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	n := m.rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := solveCholesky(l, e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// SolveRidge solves (m + λI)·x = b; used to regularize near-singular normal
// equations in the federated regressions.
func SolveRidge(m *Dense, b []float64, lambda float64) ([]float64, error) {
	r := m.Clone()
	for i := 0; i < r.rows; i++ {
		r.Add(i, i, lambda)
	}
	return SolveSPD(r, b)
}

// Solve solves the general square system m·x = b by Gaussian elimination
// with partial pivoting.
func Solve(m *Dense, b []float64) ([]float64, error) {
	if m.rows != m.cols || m.rows != len(b) {
		return nil, errors.New("stats: Solve dimension mismatch")
	}
	n := m.rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if piv != col {
			pr, cr := a.Row(piv), a.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[piv], x[col] = x[col], x[piv]
		}
		d := a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / d
			if f == 0 {
				continue
			}
			rr, cr := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Det returns the determinant via LU elimination with partial pivoting.
func Det(m *Dense) float64 {
	if m.rows != m.cols {
		panic("stats: Det of non-square matrix")
	}
	n := m.rows
	a := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		piv, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				piv, best = r, v
			}
		}
		if best == 0 {
			return 0
		}
		if piv != col {
			pr, cr := a.Row(piv), a.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			det = -det
		}
		d := a.At(col, col)
		det *= d
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / d
			if f == 0 {
				continue
			}
			rr, cr := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
		}
	}
	return det
}
