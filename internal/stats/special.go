package stats

import "math"

// Special functions underpinning the distribution CDFs: regularized
// incomplete gamma and beta functions, implemented with the standard
// series/continued-fraction split (Numerical Recipes style), plus log-beta.

// LogBeta returns ln B(a, b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncGammaLower returns P(a, x), the regularized lower incomplete gamma
// function, for a > 0, x ≥ 0.
func RegIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// RegIncGammaUpper returns Q(a, x) = 1 − P(a, x).
func RegIncGammaUpper(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) by its continued-fraction representation.
func gammaCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// RegIncBeta returns I_x(a, b), the regularized incomplete beta function,
// for a, b > 0 and 0 ≤ x ≤ 1.
func RegIncBeta(x, a, b float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbet := a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b)
	front := math.Exp(lbet)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(x, a, b) / a
	}
	return 1 - front*betaCF(1-x, b, a)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// (Lentz's algorithm).
func betaCF(x, a, b float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}

// InvRegIncBeta inverts the regularized incomplete beta function: it returns
// x with I_x(a,b) = p, by bisection refined with Newton steps.
func InvRegIncBeta(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	x := 0.5
	for i := 0; i < 200; i++ {
		v := RegIncBeta(x, a, b)
		if math.Abs(v-p) < 1e-14 {
			return x
		}
		if v < p {
			lo = x
		} else {
			hi = x
		}
		// Newton step using the beta density, clamped to the bracket.
		dens := math.Exp((a-1)*math.Log(x) + (b-1)*math.Log(1-x) - LogBeta(a, b))
		if dens > 0 {
			nx := x - (v-p)/dens
			if nx > lo && nx < hi {
				x = nx
				continue
			}
		}
		x = (lo + hi) / 2
	}
	return x
}
