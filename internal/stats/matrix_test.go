package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	m.Add(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Fatalf("Add failed: %v", m.At(1, 2))
	}
	cl := m.Clone()
	cl.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases original")
	}
}

func TestDenseDataRoundTrip(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewDenseData(2, 3, d)
	if m.At(0, 1) != 2 || m.At(1, 0) != 4 {
		t.Fatalf("row-major layout wrong: %v %v", m.At(0, 1), m.At(1, 0))
	}
	if &m.Data()[0] != &d[0] {
		t.Fatal("NewDenseData copied data")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := a.MulVec([]float64{1, 0, -1})
	if v[0] != -2 || v[1] != -2 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestXtXMatchesNaive(t *testing.T) {
	g := NewRNG(1)
	x := NewDense(17, 4)
	for i := range x.data {
		x.data[i] = g.Normal(0, 1)
	}
	got := XtX(x)
	want := x.T().Mul(x)
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("XtX differs from naive by %g", d)
	}
}

func TestXtY(t *testing.T) {
	x := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	y := []float64{1, -1, 2}
	got := XtY(x, y)
	want := []float64{1*1 - 3 + 10, 2 - 4 + 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("XtY = %v, want %v", got, want)
		}
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if MaxAbsDiff(id, d) != 0 {
		t.Fatal("Identity != Diag(ones)")
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{3, 4})
	a.AddMat(b)
	if a.At(0, 0) != 4 || a.At(0, 1) != 6 {
		t.Fatalf("AddMat = %v", a.data)
	}
	a.SubMat(b).Scale(2)
	if a.At(0, 0) != 2 || a.At(0, 1) != 4 {
		t.Fatalf("SubMat/Scale = %v", a.data)
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

// Property: (AᵀA) is symmetric for random A.
func TestXtXSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		r, c := 2+g.Intn(20), 1+g.Intn(6)
		x := NewDense(r, c)
		for i := range x.data {
			x.data[i] = g.Normal(0, 3)
		}
		m := XtX(x)
		for i := 0; i < c; i++ {
			for j := 0; j < c; j++ {
				if m.At(i, j) != m.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiffShapes(t *testing.T) {
	if !math.IsInf(MaxAbsDiff(NewDense(1, 2), NewDense(2, 1)), 1) {
		t.Fatal("shape mismatch should be +Inf")
	}
}
