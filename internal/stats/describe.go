package stats

import (
	"math"
	"sort"
)

// Descriptive helpers used across the algorithm suite and the dashboard
// endpoints (Figure 3 of the paper reports Datapoints, NA, SE, mean, min,
// Q1, Q2, Q3, max per variable per dataset).

// Mean returns the arithmetic mean of xs (NaN if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN if n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default the
// paper's Python stack uses).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for an already-sorted slice.
func QuantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return s[n-1]
	}
	if lo < 0 {
		return s[0]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Summary holds the univariate descriptive statistics MIP's dashboard shows.
type Summary struct {
	N    int     // non-missing datapoints
	NA   int     // missing values
	Mean float64 // arithmetic mean
	SE   float64 // standard error of the mean
	Min  float64
	Q1   float64
	Q2   float64 // median
	Q3   float64
	Max  float64
	Std  float64
}

// Describe computes Summary over xs; na counts missing values removed before
// the call (the caller strips NaNs and reports how many it stripped).
func Describe(xs []float64, na int) Summary {
	s := Summary{N: len(xs), NA: na}
	if len(xs) == 0 {
		s.Mean, s.SE, s.Min, s.Q1, s.Q2, s.Q3, s.Max, s.Std =
			math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Mean = Mean(xs)
	s.Std = StdDev(xs)
	s.SE = s.Std / math.Sqrt(float64(len(xs)))
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = QuantileSorted(sorted, 0.25)
	s.Q2 = QuantileSorted(sorted, 0.5)
	s.Q3 = QuantileSorted(sorted, 0.75)
	return s
}

// Moments holds additive sufficient statistics: federating univariate
// descriptives reduces to summing these across workers.
type Moments struct {
	N    float64
	Sum  float64
	Sum2 float64
	Min  float64
	Max  float64
}

// NewMoments returns an identity element for Merge.
func NewMoments() Moments {
	return Moments{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Observe folds one value into the moments.
func (m *Moments) Observe(x float64) {
	m.N++
	m.Sum += x
	m.Sum2 += x * x
	if x < m.Min {
		m.Min = x
	}
	if x > m.Max {
		m.Max = x
	}
}

// Merge combines two moment sets; it is associative and commutative, the
// property that makes the federated descriptive statistics exact.
func (m Moments) Merge(o Moments) Moments {
	out := m
	out.N += o.N
	out.Sum += o.Sum
	out.Sum2 += o.Sum2
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Mean returns the mean implied by the moments.
func (m Moments) Mean() float64 {
	if m.N == 0 {
		return math.NaN()
	}
	return m.Sum / m.N
}

// Variance returns the unbiased variance implied by the moments.
func (m Moments) Variance() float64 {
	if m.N < 2 {
		return math.NaN()
	}
	return (m.Sum2 - m.Sum*m.Sum/m.N) / (m.N - 1)
}

// SE returns the standard error of the mean implied by the moments.
func (m Moments) SE() float64 {
	if m.N < 2 {
		return math.NaN()
	}
	return math.Sqrt(m.Variance() / m.N)
}
