package stats

import "math"

// Distributions used by the hypothesis-testing algorithms (t-tests, ANOVA,
// Pearson correlation, regression summaries, calibration belt): standard
// normal, Student's t, F, and chi-squared, each with CDF and quantile.

// NormalCDF returns P(Z ≤ z) for the standard normal distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z with NormalCDF(z) = p, using the
// Acklam/Wichura-style rational approximation refined by one Halley step.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Rational approximation (Acklam). Max abs error ~1.15e-9 before
	// refinement.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// StudentTCDF returns P(T ≤ t) for Student's t with df degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(x, df/2, 0.5)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the t with StudentTCDF(t, df) = p.
func StudentTQuantile(p, df float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if p == 0.5 {
		return 0
	}
	neg := p < 0.5
	pp := p
	if neg {
		pp = 1 - p
	}
	// StudentTCDF(t) = pp  ⇔  I_x(df/2, 1/2) = 2(1−pp) with x = df/(df+t²).
	x := InvRegIncBeta(2*(1-pp), df/2, 0.5)
	t := math.Sqrt(df * (1 - x) / x)
	if neg {
		t = -t
	}
	return t
}

// FCDF returns P(F ≤ f) for the F distribution with d1 and d2 degrees of
// freedom.
func FCDF(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return RegIncBeta(x, d1/2, d2/2)
}

// FQuantile returns the f with FCDF(f, d1, d2) = p.
func FQuantile(p, d1, d2 float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	x := InvRegIncBeta(p, d1/2, d2/2)
	return d2 * x / (d1 * (1 - x))
}

// ChiSquaredCDF returns P(X ≤ x) for chi-squared with df degrees of freedom.
func ChiSquaredCDF(x, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaLower(df/2, x/2)
}

// ChiSquaredQuantile returns the x with ChiSquaredCDF(x, df) = p, by
// bracketed bisection with Newton refinement.
func ChiSquaredQuantile(p, df float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, df
	for ChiSquaredCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	x := df
	for i := 0; i < 200; i++ {
		v := ChiSquaredCDF(x, df)
		if math.Abs(v-p) < 1e-14 {
			return x
		}
		if v < p {
			lo = x
		} else {
			hi = x
		}
		x = (lo + hi) / 2
	}
	return x
}
