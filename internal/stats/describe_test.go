package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", v)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty/singleton inputs should give NaN where undefined")
	}
	if q := Quantile([]float64{42}, 0.99); q != 42 {
		t.Fatalf("singleton quantile = %v", q)
	}
}

func TestQuantileType7(t *testing.T) {
	// R: quantile(1:4, c(.25,.5,.75)) -> 1.75 2.50 3.25 (type 7).
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{{0.25, 1.75}, {0.5, 2.5}, {0.75, 3.25}, {0, 1}, {1, 4}}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5}, 2)
	if s.N != 5 || s.NA != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Q2 != 3 {
		t.Fatalf("stats: %+v", s)
	}
	wantSE := math.Sqrt(2.5 / 5)
	if !almostEq(s.SE, wantSE, 1e-12) {
		t.Fatalf("SE = %v, want %v", s.SE, wantSE)
	}
}

func TestDescribeEmpty(t *testing.T) {
	s := Describe(nil, 3)
	if s.N != 0 || s.NA != 3 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Q1) {
		t.Fatalf("empty describe: %+v", s)
	}
}

func TestMomentsMergeExactness(t *testing.T) {
	// The core federated invariant: merging per-worker moments equals the
	// pooled moments.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 2 + g.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.Normal(10, 5)
		}
		pooled := NewMoments()
		for _, x := range xs {
			pooled.Observe(x)
		}
		// Split into 1..5 shards.
		k := 1 + g.Intn(5)
		merged := NewMoments()
		for s := 0; s < k; s++ {
			shard := NewMoments()
			for i := s; i < n; i += k {
				shard.Observe(xs[i])
			}
			merged = merged.Merge(shard)
		}
		return merged.N == pooled.N &&
			math.Abs(merged.Sum-pooled.Sum) < 1e-9 &&
			math.Abs(merged.Sum2-pooled.Sum2) < 1e-6 &&
			merged.Min == pooled.Min && merged.Max == pooled.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMomentsStats(t *testing.T) {
	m := NewMoments()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Observe(x)
	}
	if m.Mean() != 5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if !almostEq(m.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", m.Variance())
	}
	if !almostEq(m.SE(), math.Sqrt(32.0/7.0/8.0), 1e-12) {
		t.Fatalf("SE = %v", m.SE())
	}
	empty := NewMoments()
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Variance()) {
		t.Fatal("empty moments should be NaN")
	}
}

func TestRNGLaplace(t *testing.T) {
	g := NewRNG(99)
	const n = 200000
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := g.Laplace(0, 2)
		sum += x
		sumAbs += math.Abs(x)
	}
	// E[X]=0, E[|X|]=b=2.
	if m := sum / n; math.Abs(m) > 0.05 {
		t.Errorf("Laplace mean = %v", m)
	}
	if m := sumAbs / n; math.Abs(m-2) > 0.05 {
		t.Errorf("Laplace E|X| = %v, want 2", m)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(123)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := g.Normal(3, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-3) > 0.05 || math.Abs(variance-4) > 0.1 {
		t.Errorf("Normal moments: mean=%v var=%v", mean, variance)
	}
}

func TestRNGCategorical(t *testing.T) {
	g := NewRNG(5)
	counts := make([]int, 3)
	for i := 0; i < 90000; i++ {
		counts[g.Categorical([]float64{1, 2, 6})]++
	}
	for i, want := range []float64{10000, 20000, 60000} {
		if math.Abs(float64(counts[i])-want) > 1500 {
			t.Errorf("category %d count = %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestMultivariateNormal(t *testing.T) {
	g := NewRNG(77)
	cov := NewDenseData(2, 2, []float64{4, 1.2, 1.2, 1})
	mean := []float64{1, -2}
	const n = 100000
	var s0, s1, s00, s11, s01 float64
	for i := 0; i < n; i++ {
		x, err := g.MultivariateNormal(mean, cov)
		if err != nil {
			t.Fatal(err)
		}
		s0 += x[0]
		s1 += x[1]
		s00 += (x[0] - 1) * (x[0] - 1)
		s11 += (x[1] + 2) * (x[1] + 2)
		s01 += (x[0] - 1) * (x[1] + 2)
	}
	if math.Abs(s0/n-1) > 0.05 || math.Abs(s1/n+2) > 0.05 {
		t.Errorf("means: %v %v", s0/n, s1/n)
	}
	if math.Abs(s00/n-4) > 0.15 || math.Abs(s11/n-1) > 0.05 || math.Abs(s01/n-1.2) > 0.1 {
		t.Errorf("cov: %v %v %v", s00/n, s11/n, s01/n)
	}
}
