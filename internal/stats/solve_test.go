package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive definite matrix AᵀA + I.
func randomSPD(g *RNG, n int) *Dense {
	a := NewDense(n, n)
	for i := range a.data {
		a.data[i] = g.Normal(0, 1)
	}
	m := XtX(a)
	for i := 0; i < n; i++ {
		m.Add(i, i, 1)
	}
	return m
}

func TestCholeskyReconstruct(t *testing.T) {
	g := NewRNG(7)
	for n := 1; n <= 8; n++ {
		m := randomSPD(g, n)
		l, err := Cholesky(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := l.Mul(l.T())
		if d := MaxAbsDiff(rec, m); d > 1e-9 {
			t.Fatalf("n=%d: LLᵀ differs by %g", n, d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(m); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	g := NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		n := 1 + g.Intn(9)
		m := randomSPD(g, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = g.Normal(0, 2)
		}
		b := m.MulVec(want)
		got, err := SolveSPD(m, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEq(got[i], want[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestInvSPD(t *testing.T) {
	g := NewRNG(13)
	m := randomSPD(g, 5)
	inv, err := InvSPD(m)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(m.Mul(inv), Identity(5)); d > 1e-9 {
		t.Fatalf("M·M⁻¹ differs from I by %g", d)
	}
}

func TestSolveGeneral(t *testing.T) {
	// Non-symmetric system with known solution.
	m := NewDenseData(3, 3, []float64{0, 2, 1, 1, -2, -3, -1, 1, 2})
	want := []float64{1, 2, 3}
	b := m.MulVec(want)
	got, err := Solve(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", got, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(m, []float64{1, 2}); err == nil {
		t.Fatal("expected error on singular system")
	}
}

func TestSolveRidgeRegularizes(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 1, 1, 1}) // singular
	x, err := SolveRidge(m, []float64{2, 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// (M + 0.5I)x = b has the unique solution x = [0.8, 0.8].
	if !almostEq(x[0], 0.8, 1e-12) || !almostEq(x[1], 0.8, 1e-12) {
		t.Fatalf("ridge solution = %v", x)
	}
}

func TestDet(t *testing.T) {
	m := NewDenseData(2, 2, []float64{3, 1, 4, 2})
	if d := Det(m); !almostEq(d, 2, 1e-12) {
		t.Fatalf("Det = %v, want 2", d)
	}
	if d := Det(NewDenseData(2, 2, []float64{1, 2, 2, 4})); d != 0 {
		t.Fatalf("Det singular = %v, want 0", d)
	}
}

// Property: Solve recovers the vector used to manufacture b, for random
// well-conditioned SPD systems.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(7)
		m := randomSPD(g, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = g.Normal(0, 1)
		}
		got, err := Solve(m, m.MulVec(want))
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSym(t *testing.T) {
	// Known decomposition: [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Verify M·v = λ·v for each eigenpair.
	for k := 0; k < 2; k++ {
		v := []float64{vecs.At(0, k), vecs.At(1, k)}
		mv := m.MulVec(v)
		for i := range v {
			if !almostEq(mv[i], vals[k]*v[i], 1e-10) {
				t.Fatalf("eigenpair %d violated: Mv=%v λv=%v", k, mv, vals[k]*v[i])
			}
		}
	}
}

func TestEigenSymRandomReconstruction(t *testing.T) {
	g := NewRNG(21)
	for n := 2; n <= 9; n++ {
		m := randomSPD(g, n)
		vals, vecs, err := EigenSym(m)
		if err != nil {
			t.Fatal(err)
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d eigenvalues not sorted: %v", n, vals)
			}
		}
		// Reconstruct: V·diag(λ)·Vᵀ = M.
		rec := vecs.Mul(Diag(vals)).Mul(vecs.T())
		if d := MaxAbsDiff(rec, m); d > 1e-8 {
			t.Fatalf("n=%d reconstruction off by %g", n, d)
		}
		// Orthonormal eigenvectors.
		if d := MaxAbsDiff(vecs.T().Mul(vecs), Identity(n)); d > 1e-8 {
			t.Fatalf("n=%d eigenvectors not orthonormal (off by %g)", n, d)
		}
	}
}
