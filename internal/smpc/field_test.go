package smpc

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldAddSub(t *testing.T) {
	if Add(Fe(P-1), 1) != 0 {
		t.Fatal("wraparound add")
	}
	if Sub(0, 1) != Fe(P-1) {
		t.Fatal("wraparound sub")
	}
	if Neg(0) != 0 || Neg(1) != Fe(P-1) {
		t.Fatal("neg")
	}
}

// Property: field arithmetic matches math/big.
func TestFieldMulMatchesBig(t *testing.T) {
	p := new(big.Int).SetUint64(P)
	f := func(a, b uint64) bool {
		a %= P
		b %= P
		got := Mul(Fe(a), Fe(b))
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return uint64(got) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldInv(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Fe(r.Uint64() % P)
		if a == 0 {
			continue
		}
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("a·a⁻¹ != 1 for a=%d", a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	if Pow(2, 0) != 1 || Pow(2, 1) != 2 || Pow(2, 10) != 1024 {
		t.Fatal("small powers wrong")
	}
	// Fermat: a^(P-1) = 1.
	if Pow(12345, uint64(P)-1) != 1 {
		t.Fatal("Fermat violated")
	}
}

func TestRandFeInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		if v := RandFe(); uint64(v) >= P {
			t.Fatalf("RandFe out of range: %d", v)
		}
	}
	if len(RandVec(17)) != 17 {
		t.Fatal("RandVec length")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := NewCodec(0)
	for _, x := range []float64{0, 1, -1, 3.14159, -2.71828, 123456.789, -99999.5, 0.0000012} {
		got := c.Decode(c.Encode(x))
		if diff := got - x; diff > c.Resolution() || diff < -c.Resolution() {
			t.Errorf("round trip %v -> %v", x, got)
		}
	}
}

func TestCodecOverflow(t *testing.T) {
	c := NewCodec(20)
	if _, err := c.EncodeErr(1e30); err == nil {
		t.Fatal("expected overflow error")
	}
	if _, err := c.EncodeErr(-1e30); err == nil {
		t.Fatal("expected underflow error")
	}
	if _, err := c.EncodeErr(math.NaN()); err == nil {
		t.Fatal("expected NaN error")
	}
	if c.MaxAbs() <= 0 {
		t.Fatal("MaxAbs must be positive")
	}
}

// Property: encode/decode is within resolution for values in range.
func TestCodecProperty(t *testing.T) {
	c := NewCodec(0)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := (r.Float64() - 0.5) * 1e6
		d := c.Decode(c.Encode(x)) - x
		return d <= c.Resolution() && d >= -c.Resolution()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeProduct(t *testing.T) {
	c := NewCodec(20)
	a, b := 3.5, -2.25
	prod := Mul(c.Encode(a), c.Encode(b))
	got := c.DecodeProduct(prod)
	if diff := got - a*b; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("product decode = %v, want %v", got, a*b)
	}
}

func TestCodecVec(t *testing.T) {
	c := NewCodec(0)
	in := []float64{1.5, -2.5, 0}
	out := c.DecodeVec(c.EncodeVec(in))
	for i := range in {
		if d := out[i] - in[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("vec round trip: %v -> %v", in, out)
		}
	}
}
