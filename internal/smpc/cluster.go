package smpc

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mip/internal/obs"
	"mip/internal/stats"
)

// SMPC metrics, registered eagerly for GET /metrics.
var (
	smpcImports = obs.GetCounter("mip_smpc_imports_total",
		"Secret vectors imported into SMPC clusters.")
	smpcShares = obs.GetCounter("mip_smpc_shares_exchanged_total",
		"Individual secret shares created across SMPC nodes.")
	smpcMessages = obs.GetCounter("mip_smpc_messages_total",
		"Simulated messages between workers, SMPC nodes and the master.")
	smpcBytes = obs.GetCounter("mip_smpc_bytes_total",
		"Simulated bytes between workers, SMPC nodes and the master.")
	smpcJobs = obs.GetGauge("mip_smpc_pending_jobs",
		"SMPC jobs holding imported shares not yet aggregated.")
)

func smpcRoundSeconds(op Op) *obs.Histogram {
	return obs.GetHistogram("mip_smpc_round_seconds",
		"Latency of one SMPC aggregation round.", nil,
		obs.Label{Key: "op", Value: op.String()})
}

// Scheme selects the secret-sharing scheme, the paper's security/efficiency
// trade-off knob.
type Scheme int

// Supported schemes.
const (
	// FullThreshold is SPDZ-style additive sharing with MACs: secure with
	// abort against an active-malicious majority, slower.
	FullThreshold Scheme = iota
	// ShamirScheme is (t, n) polynomial sharing: honest-but-curious, fast.
	ShamirScheme
)

// String names the scheme.
func (s Scheme) String() string {
	if s == FullThreshold {
		return "full-threshold"
	}
	return "shamir"
}

// Op is an aggregation operation the SMPC engine supports (the paper lists
// sum, multiplication, min/max and disjoint union).
type Op int

// Supported aggregation operations.
const (
	OpSum Op = iota
	OpProduct
	OpMin
	OpMax
	OpUnion
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProduct:
		return "product"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpUnion:
		return "union"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// NoiseKind selects in-protocol DP noise (the engine "supports injecting
// Laplacian and Gaussian noise during the SMPC to the result").
type NoiseKind int

// Noise kinds.
const (
	NoNoise NoiseKind = iota
	LaplaceNoise
	GaussianNoise
)

// Noise configures in-protocol noise addition.
type Noise struct {
	Kind  NoiseKind
	Scale float64 // Laplace scale b, or Gaussian σ
}

// Config parameterizes a cluster.
type Config struct {
	Scheme    Scheme
	Nodes     int  // number of SMPC nodes
	Threshold int  // Shamir t (reconstruction needs t+1); ignored for FT
	FracBits  uint // fixed-point precision (0 = default)
	Seed      int64
}

// NetStats counts simulated traffic between workers, SMPC nodes and the
// master — the quantity the E5/E6 benchmarks report alongside latency.
type NetStats struct {
	Messages int
	Bytes    int64
}

func (n *NetStats) add(msgs int, bytes int64) {
	n.Messages += msgs
	n.Bytes += bytes
	smpcMessages.Add(int64(msgs))
	smpcBytes.Add(bytes)
}

// Cluster is the SMPC engine: a set of computing nodes plus (in FT mode)
// the offline-phase dealer. Jobs are identified by the caller-provided
// global unique identifier, matching the paper's asynchronous flow.
type Cluster struct {
	cfg    Config
	codec  Codec
	dealer *Dealer // FT only

	rngMu sync.Mutex
	rng   *stats.RNG

	mu   sync.Mutex
	jobs map[string]*job
	net  NetStats
}

// job accumulates per-worker share contributions for one computation.
// Dimensions may differ per worker; element-wise ops (sum, product,
// min/max) require them to be equal, the disjoint union does not.
type job struct {
	dims    []int
	ft      [][][]AuthShare   // [worker][node][elem]
	shamir  [][][]ShamirShare // [worker][node][elem] (each elem share at node's x)
	workers []string
}

// commonDim returns the shared dimension for element-wise ops.
func (j *job) commonDim() (int, error) {
	if len(j.dims) == 0 {
		return 0, fmt.Errorf("smpc: job has no inputs")
	}
	d := j.dims[0]
	for _, x := range j.dims[1:] {
		if x != d {
			return 0, fmt.Errorf("smpc: element-wise op over ragged inputs (%v)", j.dims)
		}
	}
	return d, nil
}

// NewCluster builds an SMPC cluster. Shamir threshold defaults to
// floor((n−1)/2), the largest honest-majority threshold.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("smpc: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Scheme == ShamirScheme {
		if cfg.Threshold == 0 {
			cfg.Threshold = (cfg.Nodes - 1) / 2
		}
		if cfg.Threshold < 1 || 2*cfg.Threshold >= cfg.Nodes {
			return nil, fmt.Errorf("smpc: Shamir needs 1 <= t < n/2, got t=%d n=%d", cfg.Threshold, cfg.Nodes)
		}
	}
	c := &Cluster{
		cfg:   cfg,
		codec: NewCodec(cfg.FracBits),
		rng:   stats.NewRNG(cfg.Seed + 7919),
		jobs:  make(map[string]*job),
	}
	if cfg.Scheme == FullThreshold {
		c.dealer = NewDealer(cfg.Nodes)
	}
	return c, nil
}

// Codec exposes the fixed-point codec in use.
func (c *Cluster) Codec() Codec { return c.codec }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NetStats returns cumulative simulated traffic.
func (c *Cluster) NetStats() NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net
}

// ResetNetStats zeroes the traffic counters.
func (c *Cluster) ResetNetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.net = NetStats{}
}

// ImportSecret secret-shares a worker's local vector into the cluster under
// the given job id. For Shamir the worker computes the polynomial shares
// itself and sends one point to each node over a secure channel. For FT the
// import follows the authenticated-input mechanism (the paper cites
// SCALE-MAMBA's importation procedure): the offline functionality
// authenticates the input with MAC shares.
func (c *Cluster) ImportSecret(jobID, workerID string, vals []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[jobID]
	if j == nil {
		j = &job{}
		c.jobs[jobID] = j
		smpcJobs.Inc()
	}
	smpcImports.Inc()
	smpcShares.Add(int64(c.cfg.Nodes * len(vals)))
	j.dims = append(j.dims, len(vals))
	enc := c.codec.EncodeVec(vals)
	switch c.cfg.Scheme {
	case FullThreshold:
		perNode := c.dealer.ShareVec(enc) // [node][elem]
		j.ft = append(j.ft, perNode)
		// n messages of 16 bytes per element (value + MAC share).
		c.net.add(c.cfg.Nodes, int64(c.cfg.Nodes*len(enc)*16))
	case ShamirScheme:
		perNode := make([][]ShamirShare, c.cfg.Nodes)
		for i := range perNode {
			perNode[i] = make([]ShamirShare, len(enc))
		}
		for e, v := range enc {
			sh := ShamirShareSecret(v, c.cfg.Threshold, c.cfg.Nodes)
			for i := range sh {
				perNode[i][e] = sh[i]
			}
		}
		j.shamir = append(j.shamir, perNode)
		c.net.add(c.cfg.Nodes, int64(c.cfg.Nodes*len(enc)*8))
	}
	j.workers = append(j.workers, workerID)
	return nil
}

// Workers lists the workers that have contributed to a job.
func (c *Cluster) Workers(jobID string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j := c.jobs[jobID]; j != nil {
		return append([]string(nil), j.workers...)
	}
	return nil
}

// Aggregate runs the requested operation over every vector imported under
// jobID, optionally injecting noise inside the protocol, and returns the
// cleartext result to the caller (the Master node). The job is consumed.
func (c *Cluster) Aggregate(jobID string, op Op, noise Noise) ([]float64, error) {
	c.mu.Lock()
	j := c.jobs[jobID]
	if j != nil {
		smpcJobs.Dec()
	}
	delete(c.jobs, jobID)
	c.mu.Unlock()
	if j == nil {
		return nil, fmt.Errorf("smpc: unknown job %q", jobID)
	}
	if len(j.workers) == 0 {
		return nil, fmt.Errorf("smpc: job %q has no inputs", jobID)
	}
	start := time.Now()
	defer func() { smpcRoundSeconds(op).Observe(time.Since(start).Seconds()) }()
	switch op {
	case OpSum:
		return c.aggregateSum(j, noise)
	case OpProduct:
		return c.aggregateProduct(j)
	case OpMin, OpMax:
		return c.aggregateMinMax(j, op == OpMax)
	case OpUnion:
		return c.aggregateUnion(j)
	}
	return nil, fmt.Errorf("smpc: unsupported op %v", op)
}

// noiseShares draws each node's additive noise contribution so that the
// node contributions sum to the target distribution: Gaussian splits the
// variance; Laplace uses its infinite divisibility into Gamma differences.
func (c *Cluster) noiseShares(noise Noise, dim int) [][]float64 {
	if noise.Kind == NoNoise || noise.Scale == 0 {
		return nil
	}
	n := c.cfg.Nodes
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	for e := 0; e < dim; e++ {
		for i := 0; i < n; i++ {
			switch noise.Kind {
			case GaussianNoise:
				out[i][e] = c.rng.Normal(0, noise.Scale/math.Sqrt(float64(n)))
			case LaplaceNoise:
				out[i][e] = c.rng.Gamma(1/float64(n), noise.Scale) - c.rng.Gamma(1/float64(n), noise.Scale)
			}
		}
	}
	return out
}

func (c *Cluster) aggregateSum(j *job, noise Noise) ([]float64, error) {
	dim, err := j.commonDim()
	if err != nil {
		return nil, err
	}
	ns := c.noiseShares(noise, dim)
	switch c.cfg.Scheme {
	case FullThreshold:
		// Each node locally sums its share across workers, adds its noise
		// share, then all elements are opened with MACCheck.
		nodeSums := make([][]AuthShare, c.cfg.Nodes)
		for node := 0; node < c.cfg.Nodes; node++ {
			acc := make([]AuthShare, dim)
			for _, w := range j.ft {
				for e := 0; e < dim; e++ {
					acc[e] = AuthShare{
						Val: Add(acc[e].Val, w[node][e].Val),
						MAC: Add(acc[e].MAC, w[node][e].MAC),
					}
				}
			}
			nodeSums[node] = acc
		}
		if ns != nil {
			// Nodes authenticate and add their noise via the offline
			// functionality, preserving the MAC invariant.
			for node := 0; node < c.cfg.Nodes; node++ {
				enc := c.codec.EncodeVec(ns[node])
				perNode := c.dealer.ShareVec(enc)
				for target := 0; target < c.cfg.Nodes; target++ {
					for e := 0; e < dim; e++ {
						nodeSums[target][e] = AuthShare{
							Val: Add(nodeSums[target][e].Val, perNode[target][e].Val),
							MAC: Add(nodeSums[target][e].MAC, perNode[target][e].MAC),
						}
					}
				}
				c.mu.Lock()
				c.net.add(c.cfg.Nodes, int64(c.cfg.Nodes*dim*16))
				c.mu.Unlock()
			}
		}
		out := make([]float64, dim)
		alpha := c.alphaShares()
		shares := make([]AuthShare, c.cfg.Nodes)
		for e := 0; e < dim; e++ {
			for node := range nodeSums {
				shares[node] = nodeSums[node][e]
			}
			v, err := Open(shares, alpha)
			if err != nil {
				return nil, err
			}
			out[e] = c.codec.Decode(v)
		}
		c.mu.Lock()
		c.net.add(c.cfg.Nodes*2, int64(c.cfg.Nodes*dim*16*2)) // broadcast of value+MAC sigma rounds
		c.mu.Unlock()
		return out, nil
	default: // Shamir
		nodeSums := make([][]ShamirShare, c.cfg.Nodes)
		for node := 0; node < c.cfg.Nodes; node++ {
			acc := make([]ShamirShare, dim)
			for e := range acc {
				acc[e] = ShamirShare{X: uint64(node + 1)}
			}
			for _, w := range j.shamir {
				for e := 0; e < dim; e++ {
					acc[e].Y = Add(acc[e].Y, w[node][e].Y)
				}
			}
			nodeSums[node] = acc
		}
		if ns != nil {
			for node := 0; node < c.cfg.Nodes; node++ {
				enc := c.codec.EncodeVec(ns[node])
				for e := 0; e < dim; e++ {
					sh := ShamirShareSecret(enc[e], c.cfg.Threshold, c.cfg.Nodes)
					for target := 0; target < c.cfg.Nodes; target++ {
						nodeSums[target][e].Y = Add(nodeSums[target][e].Y, sh[target].Y)
					}
				}
				c.mu.Lock()
				c.net.add(c.cfg.Nodes, int64(c.cfg.Nodes*dim*8))
				c.mu.Unlock()
			}
		}
		out := make([]float64, dim)
		k := c.cfg.Threshold + 1
		lag := lagrangeAtZero(k)
		for e := 0; e < dim; e++ {
			var v Fe
			for i := 0; i < k; i++ {
				v = Add(v, Mul(nodeSums[i][e].Y, lag[i]))
			}
			out[e] = c.codec.Decode(v)
		}
		c.mu.Lock()
		c.net.add(k, int64(k*dim*8))
		c.mu.Unlock()
		return out, nil
	}
}

// lagrangeAtZero precomputes Lagrange coefficients for points 1..k
// evaluated at 0 (shared across all vector elements — the amortization
// that keeps Shamir fast).
func lagrangeAtZero(k int) []Fe {
	out := make([]Fe, k)
	for i := 1; i <= k; i++ {
		num, den := Fe(1), Fe(1)
		for j := 1; j <= k; j++ {
			if j == i {
				continue
			}
			num = Mul(num, Neg(Fe(uint64(j))))
			den = Mul(den, Sub(Fe(uint64(i)), Fe(uint64(j))))
		}
		out[i-1] = Mul(num, Inv(den))
	}
	return out
}

func (c *Cluster) alphaShares() []Fe {
	out := make([]Fe, c.cfg.Nodes)
	for i := range out {
		out[i] = c.dealer.AlphaShare(i)
	}
	return out
}

// aggregateProduct computes the element-wise product across workers.
// FT consumes one Beaver triple per multiplication (with two authenticated
// openings each); Shamir multiplies shares locally and opens the degree-2t
// sharing with 2t+1 shares.
func (c *Cluster) aggregateProduct(j *job) ([]float64, error) {
	dim, err := j.commonDim()
	if err != nil {
		return nil, err
	}
	nWorkers := len(j.workers)
	out := make([]float64, dim)
	switch c.cfg.Scheme {
	case FullThreshold:
		alpha := c.alphaShares()
		for e := 0; e < dim; e++ {
			// Fold workers left to right. After each Beaver multiplication
			// the product carries twice the fixed-point scale, so it is
			// opened (with MACCheck), rescaled, and re-shared through the
			// offline functionality — a simplified truncation round that
			// bounds the scale at any fold depth.
			cur := c.columnFT(j, 0, e)
			if nWorkers == 1 {
				v, err := Open(cur, alpha)
				if err != nil {
					return nil, err
				}
				out[e] = c.codec.Decode(v)
				continue
			}
			var acc float64
			for w := 1; w < nWorkers; w++ {
				next := c.columnFT(j, w, e)
				triples := c.dealer.Triple()
				c.mu.Lock()
				c.net.add(3*c.cfg.Nodes, int64(3*c.cfg.Nodes*16)) // triple distribution
				c.net.add(2*c.cfg.Nodes, int64(2*c.cfg.Nodes*16)) // d/e openings
				c.mu.Unlock()
				prod, err := Multiply(cur, next, triples, alpha)
				if err != nil {
					return nil, err
				}
				v, err := Open(prod, alpha)
				if err != nil {
					return nil, err
				}
				acc = c.codec.DecodeProduct(v)
				if w < nWorkers-1 {
					cur = c.dealer.Share(c.codec.Encode(acc))
					c.mu.Lock()
					c.net.add(c.cfg.Nodes, int64(c.cfg.Nodes*16))
					c.mu.Unlock()
				}
			}
			out[e] = acc
		}
		return out, nil
	default:
		if nWorkers > 1 && c.cfg.Threshold*2 >= c.cfg.Nodes {
			return nil, fmt.Errorf("smpc: Shamir product needs 2t < n")
		}
		// Fold two operands at a time: multiply shares locally (degree
		// rises to 2t), reconstruct the pairwise product from 2t+1 points,
		// and re-share the intermediate — a simplified BGW degree
		// reduction. Raw worker inputs are never opened; only fold
		// intermediates (and the final product, which is the output) are.
		for e := 0; e < dim; e++ {
			if nWorkers == 1 {
				out[e] = c.codec.Decode(c.openShamirColumn(j, 0, e, c.cfg.Threshold+1))
				continue
			}
			cur := make([]ShamirShare, c.cfg.Nodes)
			for node := 0; node < c.cfg.Nodes; node++ {
				cur[node] = j.shamir[0][node][e]
			}
			var acc float64
			for w := 1; w < nWorkers; w++ {
				prod := make([]ShamirShare, c.cfg.Nodes)
				for node := 0; node < c.cfg.Nodes; node++ {
					prod[node] = ShamirShare{
						X: uint64(node + 1),
						Y: Mul(cur[node].Y, j.shamir[w][node][e].Y),
					}
				}
				k := 2*c.cfg.Threshold + 1
				v, err := ShamirReconstruct(prod, k-1)
				if err != nil {
					return nil, err
				}
				acc = c.codec.DecodeProduct(v)
				c.mu.Lock()
				c.net.add(k, int64(k*8))
				c.mu.Unlock()
				if w < nWorkers-1 {
					cur = c.reshare(acc)
				}
			}
			out[e] = acc
		}
		return out, nil
	}
}

// reshare produces a fresh Shamir sharing of a (decoded) value, modeling
// the degree-reduction re-sharing round.
func (c *Cluster) reshare(v float64) []ShamirShare {
	c.mu.Lock()
	c.net.add(c.cfg.Nodes, int64(c.cfg.Nodes*8))
	c.mu.Unlock()
	return ShamirShareSecret(c.codec.Encode(v), c.cfg.Threshold, c.cfg.Nodes)
}

func (c *Cluster) columnFT(j *job, worker, elem int) []AuthShare {
	out := make([]AuthShare, c.cfg.Nodes)
	for node := 0; node < c.cfg.Nodes; node++ {
		out[node] = j.ft[worker][node][elem]
	}
	return out
}

func (c *Cluster) openShamirColumn(j *job, worker, elem, k int) Fe {
	shares := make([]ShamirShare, 0, k)
	for node := 0; node < k; node++ {
		shares = append(shares, j.shamir[worker][node][elem])
	}
	v, err := ShamirReconstruct(shares, k-1)
	if err != nil {
		panic(err) // internal: k points always available
	}
	c.mu.Lock()
	c.net.add(k, int64(k*8))
	c.mu.Unlock()
	return v
}

// aggregateMinMax computes the element-wise min (or max) across workers via
// a fold of masked comparisons: each comparison multiplies the difference
// by a fresh random positive mask and opens only the masked value, whose
// sign equals the sign of the difference. The comparison outcome (not the
// magnitudes) becomes public — the standard trade-off the paper alludes to
// when noting comparisons are where SMPC overhead concentrates.
func (c *Cluster) aggregateMinMax(j *job, wantMax bool) ([]float64, error) {
	dim, err := j.commonDim()
	if err != nil {
		return nil, err
	}
	nWorkers := len(j.workers)
	out := make([]float64, dim)
	switch c.cfg.Scheme {
	case FullThreshold:
		alpha := c.alphaShares()
		for e := 0; e < dim; e++ {
			best := c.columnFT(j, 0, e)
			for w := 1; w < nWorkers; w++ {
				cand := c.columnFT(j, w, e)
				diff := SubShares(cand, best) // cand − best
				mask := c.dealer.RandomMask(20)
				triples := c.dealer.Triple()
				c.mu.Lock()
				c.net.add(4*c.cfg.Nodes, int64(4*c.cfg.Nodes*16))
				c.mu.Unlock()
				masked, err := Multiply(diff, mask, triples, alpha)
				if err != nil {
					return nil, err
				}
				w2, err := Open(masked, alpha)
				if err != nil {
					return nil, err
				}
				// cand < best and we want min → cand wins;
				// cand > best and we want max → cand wins.
				negative := uint64(w2) > half
				if (negative && !wantMax) || (!negative && wantMax && w2 != 0) {
					best = cand
				}
			}
			v, err := Open(best, alpha)
			if err != nil {
				return nil, err
			}
			out[e] = c.codec.Decode(v)
		}
		return out, nil
	default:
		for e := 0; e < dim; e++ {
			bestW := 0
			for w := 1; w < nWorkers; w++ {
				// diff = cand − best, locally on each node's share.
				diff := make([]ShamirShare, c.cfg.Nodes)
				for node := 0; node < c.cfg.Nodes; node++ {
					diff[node] = ShamirShare{
						X: uint64(node + 1),
						Y: Sub(j.shamir[w][node][e].Y, j.shamir[bestW][node][e].Y),
					}
				}
				// Mask with a shared random positive value and open.
				c.rngMu.Lock()
				m := uint64(c.rng.Intn(1<<20-1) + 1)
				c.rngMu.Unlock()
				maskShares := ShamirShareSecret(Fe(m), c.cfg.Threshold, c.cfg.Nodes)
				prod := make([]ShamirShare, c.cfg.Nodes)
				for node := 0; node < c.cfg.Nodes; node++ {
					prod[node] = ShamirShare{X: uint64(node + 1), Y: Mul(diff[node].Y, maskShares[node].Y)}
				}
				k := 2*c.cfg.Threshold + 1
				v, err := ShamirReconstruct(prod, k-1)
				if err != nil {
					return nil, err
				}
				c.mu.Lock()
				c.net.add(k+c.cfg.Nodes, int64((k+c.cfg.Nodes)*8))
				c.mu.Unlock()
				negative := uint64(v) > half
				if (negative && !wantMax) || (!negative && wantMax && v != 0) {
					bestW = w
				}
			}
			out[e] = c.codec.Decode(c.openShamirColumn(j, bestW, e, c.cfg.Threshold+1))
		}
		return out, nil
	}
}

// aggregateUnion opens every imported vector and returns the sorted
// distinct values — the disjoint-union primitive (used e.g. for the global
// set of Kaplan-Meier event times). Inputs are typically hashes or discrete
// time points; the set itself is the intended public output.
func (c *Cluster) aggregateUnion(j *job) ([]float64, error) {
	seen := map[float64]struct{}{}
	switch c.cfg.Scheme {
	case FullThreshold:
		alpha := c.alphaShares()
		for w := range j.ft {
			for e := 0; e < j.dims[w]; e++ {
				v, err := Open(c.columnFT(j, w, e), alpha)
				if err != nil {
					return nil, err
				}
				seen[c.codec.Decode(v)] = struct{}{}
			}
		}
	default:
		for w := range j.shamir {
			for e := 0; e < j.dims[w]; e++ {
				shares := make([]ShamirShare, c.cfg.Threshold+1)
				for node := 0; node <= c.cfg.Threshold; node++ {
					shares[node] = j.shamir[w][node][e]
				}
				v, err := ShamirReconstruct(shares, c.cfg.Threshold)
				if err != nil {
					return nil, err
				}
				seen[c.codec.Decode(v)] = struct{}{}
			}
		}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out, nil
}
