package smpc

import (
	"fmt"
	"math"
)

// Fixed-point encoding of reals into the field: x ↦ round(x · 2^frac) mod P,
// with negatives in the upper half of the field. The default 20 fractional
// bits give ~1e-6 resolution; the integral magnitude must stay below
// 2^(60 − frac) so sums do not wrap.

// DefaultFracBits is the default fixed-point precision.
const DefaultFracBits = 20

// Codec converts between float64 and field elements.
type Codec struct {
	FracBits uint
}

// NewCodec returns a codec with the given fractional bits (0 picks the
// default).
func NewCodec(fracBits uint) Codec {
	if fracBits == 0 {
		fracBits = DefaultFracBits
	}
	return Codec{FracBits: fracBits}
}

// half marks the boundary between positive and negative encodings.
const half = P / 2

// Encode converts a real to a field element. Values whose scaled magnitude
// exceeds the representable range are clamped (and reported by EncodeErr).
func (c Codec) Encode(x float64) Fe {
	f, _ := c.EncodeErr(x)
	return f
}

// EncodeErr converts a real to a field element, reporting range errors.
func (c Codec) EncodeErr(x float64) (Fe, error) {
	if math.IsNaN(x) {
		return 0, fmt.Errorf("smpc: cannot encode NaN")
	}
	scaled := x * float64(uint64(1)<<c.FracBits)
	limit := float64(half)
	if scaled >= limit {
		return Fe(half), fmt.Errorf("smpc: %v overflows fixed-point range", x)
	}
	if scaled <= -limit {
		return Neg(Fe(half)), fmt.Errorf("smpc: %v underflows fixed-point range", x)
	}
	r := math.Round(scaled)
	if r < 0 {
		return Neg(Fe(uint64(-r))), nil
	}
	return Fe(uint64(r)), nil
}

// Decode converts a field element back to a real.
func (c Codec) Decode(f Fe) float64 {
	scale := float64(uint64(1) << c.FracBits)
	if uint64(f) > half {
		return -float64(P-uint64(f)) / scale
	}
	return float64(uint64(f)) / scale
}

// DecodeProduct decodes the product of two encoded values (which carries
// 2·FracBits of scaling).
func (c Codec) DecodeProduct(f Fe) float64 {
	scale := float64(uint64(1) << c.FracBits)
	if uint64(f) > half {
		return -float64(P-uint64(f)) / (scale * scale)
	}
	return float64(uint64(f)) / (scale * scale)
}

// EncodeVec encodes a vector.
func (c Codec) EncodeVec(xs []float64) []Fe {
	out := make([]Fe, len(xs))
	for i, x := range xs {
		out[i] = c.Encode(x)
	}
	return out
}

// DecodeVec decodes a vector.
func (c Codec) DecodeVec(fs []Fe) []float64 {
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = c.Decode(f)
	}
	return out
}

// Resolution returns the representable step size.
func (c Codec) Resolution() float64 { return 1 / float64(uint64(1)<<c.FracBits) }

// MaxAbs returns the largest encodable magnitude.
func (c Codec) MaxAbs() float64 {
	return float64(half) / float64(uint64(1)<<c.FracBits)
}
