package smpc

import (
	"math"
	"testing"
)

func newTestCluster(t *testing.T, scheme Scheme, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Scheme: scheme, Nodes: nodes, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{Scheme: FullThreshold, Nodes: 1}); err == nil {
		t.Fatal("1 node must be rejected")
	}
	if _, err := NewCluster(Config{Scheme: ShamirScheme, Nodes: 4, Threshold: 2}); err == nil {
		t.Fatal("2t >= n must be rejected for Shamir")
	}
	c, err := NewCluster(Config{Scheme: ShamirScheme, Nodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().Threshold != 2 {
		t.Fatalf("default threshold = %d, want 2", c.Config().Threshold)
	}
}

func TestSecureSumBothSchemes(t *testing.T) {
	inputs := [][]float64{
		{1.5, -2.0, 3.25},
		{0.5, 10.0, -1.25},
		{2.0, 2.0, 2.0},
	}
	want := []float64{4.0, 10.0, 4.0}
	for _, scheme := range []Scheme{FullThreshold, ShamirScheme} {
		c := newTestCluster(t, scheme, 3)
		for i, in := range inputs {
			if err := c.ImportSecret("job1", workerName(i), in); err != nil {
				t.Fatal(err)
			}
		}
		got, err := c.Aggregate("job1", OpSum, Noise{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5 {
				t.Fatalf("%v: sum[%d] = %v, want %v", scheme, i, got[i], want[i])
			}
		}
	}
}

func workerName(i int) string { return string(rune('a' + i)) }

func TestSecureProductBothSchemes(t *testing.T) {
	inputs := [][]float64{
		{2.0, -3.0},
		{4.0, 0.5},
		{0.5, 2.0},
	}
	want := []float64{4.0, -3.0}
	for _, scheme := range []Scheme{FullThreshold, ShamirScheme} {
		c := newTestCluster(t, scheme, 3)
		for i, in := range inputs {
			if err := c.ImportSecret("j", workerName(i), in); err != nil {
				t.Fatal(err)
			}
		}
		got, err := c.Aggregate("j", OpProduct, Noise{})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-3 {
				t.Fatalf("%v: prod[%d] = %v, want %v", scheme, i, got[i], want[i])
			}
		}
	}
}

func TestSecureMinMaxBothSchemes(t *testing.T) {
	inputs := [][]float64{
		{5.0, -1.0, 7.5},
		{3.0, -4.0, 9.0},
		{4.0, 2.0, 8.0},
	}
	wantMin := []float64{3.0, -4.0, 7.5}
	wantMax := []float64{5.0, 2.0, 9.0}
	for _, scheme := range []Scheme{FullThreshold, ShamirScheme} {
		c := newTestCluster(t, scheme, 3)
		for i, in := range inputs {
			c.ImportSecret("min", workerName(i), in)
			c.ImportSecret("max", workerName(i), in)
		}
		gotMin, err := c.Aggregate("min", OpMin, Noise{})
		if err != nil {
			t.Fatalf("%v min: %v", scheme, err)
		}
		gotMax, err := c.Aggregate("max", OpMax, Noise{})
		if err != nil {
			t.Fatalf("%v max: %v", scheme, err)
		}
		for i := range wantMin {
			if math.Abs(gotMin[i]-wantMin[i]) > 1e-5 {
				t.Fatalf("%v: min[%d] = %v, want %v", scheme, i, gotMin[i], wantMin[i])
			}
			if math.Abs(gotMax[i]-wantMax[i]) > 1e-5 {
				t.Fatalf("%v: max[%d] = %v, want %v", scheme, i, gotMax[i], wantMax[i])
			}
		}
	}
}

func TestSecureUnion(t *testing.T) {
	for _, scheme := range []Scheme{FullThreshold, ShamirScheme} {
		c := newTestCluster(t, scheme, 3)
		c.ImportSecret("u", "a", []float64{1, 3, 5})
		c.ImportSecret("u", "b", []float64{3, 7, 9})
		got, err := c.Aggregate("u", OpUnion, Noise{})
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{1, 3, 5, 7, 9}
		if len(got) != len(want) {
			t.Fatalf("%v: union = %v", scheme, got)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("%v: union = %v", scheme, got)
			}
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	c := newTestCluster(t, ShamirScheme, 3)
	if _, err := c.Aggregate("missing", OpSum, Noise{}); err == nil {
		t.Fatal("unknown job must error")
	}
	c.ImportSecret("ragged", "a", []float64{1})
	c.ImportSecret("ragged", "b", []float64{1, 2})
	if _, err := c.Aggregate("ragged", OpSum, Noise{}); err == nil {
		t.Fatal("element-wise op over ragged inputs must error")
	}
	c.ImportSecret("j", "a", []float64{1})
	if w := c.Workers("j"); len(w) != 1 || w[0] != "a" {
		t.Fatalf("workers = %v", w)
	}
	if _, err := c.Aggregate("j", OpSum, Noise{}); err != nil {
		t.Fatal(err)
	}
	// Job consumed.
	if _, err := c.Aggregate("j", OpSum, Noise{}); err == nil {
		t.Fatal("job must be consumed by aggregation")
	}
}

// In-protocol Gaussian noise: the mean over many aggregations must be near
// the true sum and the spread near σ.
func TestNoiseInjectionGaussian(t *testing.T) {
	c := newTestCluster(t, FullThreshold, 3)
	const sigma = 2.0
	const trials = 400
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		c.ImportSecret("g", "a", []float64{10})
		c.ImportSecret("g", "b", []float64{20})
		out, err := c.Aggregate("g", OpSum, Noise{Kind: GaussianNoise, Scale: sigma})
		if err != nil {
			t.Fatal(err)
		}
		sum += out[0]
		sum2 += out[0] * out[0]
	}
	mean := sum / trials
	sd := math.Sqrt(sum2/trials - mean*mean)
	if math.Abs(mean-30) > 0.5 {
		t.Fatalf("noised mean = %v, want ~30", mean)
	}
	if math.Abs(sd-sigma) > 0.5 {
		t.Fatalf("noise sd = %v, want ~%v", sd, sigma)
	}
}

// Distributed Laplace via Gamma differences: E=target, E|X−μ|≈b.
func TestNoiseInjectionLaplace(t *testing.T) {
	c := newTestCluster(t, ShamirScheme, 3)
	const b = 1.5
	const trials = 600
	var sum, sumAbs float64
	for i := 0; i < trials; i++ {
		c.ImportSecret("l", "a", []float64{5})
		out, err := c.Aggregate("l", OpSum, Noise{Kind: LaplaceNoise, Scale: b})
		if err != nil {
			t.Fatal(err)
		}
		sum += out[0]
		sumAbs += math.Abs(out[0] - 5)
	}
	if mean := sum / trials; math.Abs(mean-5) > 0.3 {
		t.Fatalf("noised mean = %v, want ~5", mean)
	}
	if mad := sumAbs / trials; math.Abs(mad-b) > 0.3 {
		t.Fatalf("noise E|X| = %v, want ~%v", mad, b)
	}
}

func TestNetStatsAccounting(t *testing.T) {
	c := newTestCluster(t, FullThreshold, 3)
	c.ImportSecret("n", "a", []float64{1, 2, 3, 4})
	after := c.NetStats()
	if after.Messages == 0 || after.Bytes == 0 {
		t.Fatal("import must be accounted")
	}
	c.ResetNetStats()
	if s := c.NetStats(); s.Messages != 0 || s.Bytes != 0 {
		t.Fatal("reset failed")
	}
}

// FT must cost more traffic than Shamir for the same job — the E5 claim in
// miniature.
func TestFTCostsMoreThanShamir(t *testing.T) {
	dims := 256
	vec := make([]float64, dims)
	for i := range vec {
		vec[i] = float64(i)
	}
	ft := newTestCluster(t, FullThreshold, 3)
	sh := newTestCluster(t, ShamirScheme, 3)
	for _, c := range []*Cluster{ft, sh} {
		c.ImportSecret("j", "a", vec)
		c.ImportSecret("j", "b", vec)
		if _, err := c.Aggregate("j", OpSum, Noise{}); err != nil {
			t.Fatal(err)
		}
	}
	if ft.NetStats().Bytes <= sh.NetStats().Bytes {
		t.Fatalf("FT bytes (%d) should exceed Shamir bytes (%d)",
			ft.NetStats().Bytes, sh.NetStats().Bytes)
	}
}

func TestSchemeAndOpStrings(t *testing.T) {
	if FullThreshold.String() != "full-threshold" || ShamirScheme.String() != "shamir" {
		t.Fatal("scheme strings")
	}
	names := map[Op]string{OpSum: "sum", OpProduct: "product", OpMin: "min", OpMax: "max", OpUnion: "union"}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("op %d = %q", op, op.String())
		}
	}
}

func TestSingleWorkerAggregates(t *testing.T) {
	for _, scheme := range []Scheme{FullThreshold, ShamirScheme} {
		c := newTestCluster(t, scheme, 3)
		c.ImportSecret("s", "only", []float64{3.5, -1.5})
		got, err := c.Aggregate("s", OpProduct, Noise{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-3.5) > 1e-5 || math.Abs(got[1]+1.5) > 1e-5 {
			t.Fatalf("%v: single-worker product = %v", scheme, got)
		}
	}
}
