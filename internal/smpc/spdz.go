package smpc

import (
	"errors"
	"fmt"
)

// SPDZ-style full-threshold sharing: x is split into additive shares
// x₁+…+x_n = x, each accompanied by a MAC share mᵢ with Σmᵢ = α·x for a
// global MAC key α that is itself additively shared (node i holds αᵢ,
// Σαᵢ = α). Opening a value runs the SPDZ MACCheck: after the candidate
// value v is public, each node computes σᵢ = mᵢ − αᵢ·v and the σ's must
// sum to zero — any tampering with value shares is caught except with
// probability 1/P, so the computation is secure-with-abort against an
// active-malicious majority (the paper's FT mode).

// ErrMACCheckFailed signals tampering detected during an opening; the
// computation must abort.
var ErrMACCheckFailed = errors.New("smpc: MAC check failed — aborting (possible tampering)")

// AuthShare is one node's authenticated share of a value.
type AuthShare struct {
	Val Fe // additive value share
	MAC Fe // additive share of α·value
}

// Triple is one node's share of a Beaver multiplication triple
// (a, b, c = a·b), produced by the offline phase.
type Triple struct {
	A, B, C AuthShare
}

// Dealer plays SPDZ's offline-phase functionality: it generates the MAC
// key shares and the preprocessing material (Beaver triples, random masks).
// In production SPDZ this functionality is realized with somewhat-
// homomorphic encryption or OT; modeling it as a dealer preserves the
// online protocol exactly, which is what the benchmarks exercise.
type Dealer struct {
	n         int
	alpha     Fe
	alphaSh   []Fe
	TriplesIn int // count of triples generated (offline cost metric)
}

// NewDealer sets up the offline functionality for n nodes.
func NewDealer(n int) *Dealer {
	if n <= 0 {
		panic("smpc: dealer needs at least one node")
	}
	d := &Dealer{n: n, alpha: RandFe()}
	d.alphaSh = d.additive(d.alpha)
	return d
}

// N returns the number of nodes.
func (d *Dealer) N() int { return d.n }

// AlphaShare returns node i's share of the MAC key.
func (d *Dealer) AlphaShare(i int) Fe { return d.alphaSh[i] }

// additive splits v into n uniformly random additive shares.
func (d *Dealer) additive(v Fe) []Fe {
	shares := make([]Fe, d.n)
	var acc Fe
	for i := 0; i < d.n-1; i++ {
		shares[i] = RandFe()
		acc = Add(acc, shares[i])
	}
	shares[d.n-1] = Sub(v, acc)
	return shares
}

// Share produces the authenticated sharing of v: per-node AuthShares.
func (d *Dealer) Share(v Fe) []AuthShare {
	vals := d.additive(v)
	macs := d.additive(Mul(d.alpha, v))
	out := make([]AuthShare, d.n)
	for i := range out {
		out[i] = AuthShare{Val: vals[i], MAC: macs[i]}
	}
	return out
}

// ShareVec shares a whole vector; result is indexed [node][element].
func (d *Dealer) ShareVec(vs []Fe) [][]AuthShare {
	out := make([][]AuthShare, d.n)
	for i := range out {
		out[i] = make([]AuthShare, len(vs))
	}
	for j, v := range vs {
		sh := d.Share(v)
		for i := range sh {
			out[i][j] = sh[i]
		}
	}
	return out
}

// Triple draws one Beaver triple (offline phase work).
func (d *Dealer) Triple() []Triple {
	a, b := RandFe(), RandFe()
	c := Mul(a, b)
	as, bs, cs := d.Share(a), d.Share(b), d.Share(c)
	out := make([]Triple, d.n)
	for i := range out {
		out[i] = Triple{A: as[i], B: bs[i], C: cs[i]}
	}
	d.TriplesIn++
	return out
}

// RandomMask draws a shared random value with a public sign guarantee
// (uniform in [1, 2^bound]); used by the masked-comparison protocol.
func (d *Dealer) RandomMask(bound uint) []AuthShare {
	for {
		r := RandFe()
		v := uint64(r) & ((1 << bound) - 1)
		if v == 0 {
			continue
		}
		return d.Share(Fe(v))
	}
}

// AddShares adds two authenticated sharings locally (no interaction).
func AddShares(a, b []AuthShare) []AuthShare {
	out := make([]AuthShare, len(a))
	for i := range a {
		out[i] = AuthShare{Val: Add(a[i].Val, b[i].Val), MAC: Add(a[i].MAC, b[i].MAC)}
	}
	return out
}

// SubShares subtracts b from a locally.
func SubShares(a, b []AuthShare) []AuthShare {
	out := make([]AuthShare, len(a))
	for i := range a {
		out[i] = AuthShare{Val: Sub(a[i].Val, b[i].Val), MAC: Sub(a[i].MAC, b[i].MAC)}
	}
	return out
}

// ScaleShares multiplies a sharing by a public constant locally.
func ScaleShares(a []AuthShare, k Fe) []AuthShare {
	out := make([]AuthShare, len(a))
	for i := range a {
		out[i] = AuthShare{Val: Mul(a[i].Val, k), MAC: Mul(a[i].MAC, k)}
	}
	return out
}

// AddPublic adds a public constant to a sharing: node 0 adjusts its value
// share; every node adjusts its MAC share by αᵢ·k.
func AddPublic(a []AuthShare, k Fe, alphaShares []Fe) []AuthShare {
	out := make([]AuthShare, len(a))
	for i := range a {
		out[i] = AuthShare{Val: a[i].Val, MAC: Add(a[i].MAC, Mul(alphaShares[i], k))}
	}
	out[0].Val = Add(out[0].Val, k)
	return out
}

// Open reveals the shared value and runs the MACCheck. alphaShares are the
// nodes' MAC-key shares. It returns ErrMACCheckFailed on any inconsistency.
func Open(shares []AuthShare, alphaShares []Fe) (Fe, error) {
	if len(shares) != len(alphaShares) {
		return 0, fmt.Errorf("smpc: %d shares but %d alpha shares", len(shares), len(alphaShares))
	}
	var v Fe
	for _, s := range shares {
		v = Add(v, s.Val)
	}
	// MACCheck: Σᵢ (mᵢ − αᵢ·v) must be zero.
	var sigma Fe
	for i, s := range shares {
		sigma = Add(sigma, Sub(s.MAC, Mul(alphaShares[i], v)))
	}
	if sigma != 0 {
		return 0, ErrMACCheckFailed
	}
	return v, nil
}

// OpenNoCheck reveals the value without authentication (used only for the
// d/e openings inside Beaver multiplication, whose MACs are checked when
// the product itself is opened — the standard deferred-check optimization
// is simplified here to immediate per-value opening).
func OpenNoCheck(shares []AuthShare) Fe {
	var v Fe
	for _, s := range shares {
		v = Add(v, s.Val)
	}
	return v
}

// Multiply runs the Beaver online multiplication: given sharings of x and
// y and one triple per node, it returns a sharing of x·y. Two values
// (x−a, y−b) are opened; everything else is local.
func Multiply(x, y []AuthShare, triples []Triple, alphaShares []Fe) ([]AuthShare, error) {
	n := len(x)
	if len(y) != n || len(triples) != n {
		return nil, fmt.Errorf("smpc: multiply share count mismatch")
	}
	a := make([]AuthShare, n)
	b := make([]AuthShare, n)
	c := make([]AuthShare, n)
	for i := range triples {
		a[i], b[i], c[i] = triples[i].A, triples[i].B, triples[i].C
	}
	dShares := SubShares(x, a)
	eShares := SubShares(y, b)
	dv, err := Open(dShares, alphaShares)
	if err != nil {
		return nil, err
	}
	ev, err := Open(eShares, alphaShares)
	if err != nil {
		return nil, err
	}
	// z = c + d·b + e·a + d·e
	z := AddShares(c, ScaleShares(b, dv))
	z = AddShares(z, ScaleShares(a, ev))
	z = AddPublic(z, Mul(dv, ev), alphaShares)
	return z, nil
}
