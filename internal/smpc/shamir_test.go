package smpc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShamirRoundTrip(t *testing.T) {
	secret := Fe(123456789)
	for _, cfg := range []struct{ t, n int }{{1, 3}, {2, 5}, {3, 7}, {1, 2}} {
		shares := ShamirShareSecret(secret, cfg.t, cfg.n)
		if len(shares) != cfg.n {
			t.Fatalf("t=%d n=%d: %d shares", cfg.t, cfg.n, len(shares))
		}
		got, err := ShamirReconstruct(shares, cfg.t)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Fatalf("t=%d n=%d: reconstructed %d, want %d", cfg.t, cfg.n, got, secret)
		}
	}
}

func TestShamirAnySubset(t *testing.T) {
	secret := Fe(987654321)
	shares := ShamirShareSecret(secret, 2, 6)
	// Any 3 of the 6 shares must reconstruct.
	subsets := [][]int{{0, 1, 2}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5}, {5, 0, 3}}
	for _, idx := range subsets {
		sub := []ShamirShare{shares[idx[0]], shares[idx[1]], shares[idx[2]]}
		got, err := ShamirReconstruct(sub, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Fatalf("subset %v reconstructed %d", idx, got)
		}
	}
}

func TestShamirBelowThresholdFails(t *testing.T) {
	shares := ShamirShareSecret(42, 2, 5)
	if _, err := ShamirReconstruct(shares[:2], 2); err == nil {
		t.Fatal("reconstruction below threshold must error")
	}
}

func TestShamirDuplicatePointRejected(t *testing.T) {
	shares := ShamirShareSecret(42, 1, 3)
	bad := []ShamirShare{shares[0], shares[0]}
	if _, err := ShamirReconstruct(bad, 1); err == nil {
		t.Fatal("duplicate x must be rejected")
	}
}

// Property: t shares are uniformly distributed — check the weaker but
// testable property that different sharings of the same secret give
// different share values (randomized polynomial).
func TestShamirRandomized(t *testing.T) {
	a := ShamirShareSecret(7, 2, 5)
	b := ShamirShareSecret(7, 2, 5)
	same := true
	for i := range a {
		if a[i].Y != b[i].Y {
			same = false
		}
	}
	if same {
		t.Fatal("two sharings identical — polynomial not randomized")
	}
}

// Property: Shamir is linear — shares of x plus shares of y reconstruct
// to x+y.
func TestShamirLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := Fe(r.Uint64() % P)
		y := Fe(r.Uint64() % P)
		sx := ShamirShareSecret(x, 2, 5)
		sy := ShamirShareSecret(y, 2, 5)
		sum, err := ShamirAddShares(sx, sy)
		if err != nil {
			return false
		}
		got, err := ShamirReconstruct(sum, 2)
		return err == nil && got == Add(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShamirAddSharesMismatch(t *testing.T) {
	a := ShamirShareSecret(1, 1, 3)
	b := ShamirShareSecret(2, 1, 4)
	if _, err := ShamirAddShares(a, b); err == nil {
		t.Fatal("length mismatch should error")
	}
	c := ShamirShareSecret(2, 1, 3)
	c[0].X = 99
	if _, err := ShamirAddShares(a, c); err == nil {
		t.Fatal("point mismatch should error")
	}
}

func TestShamirInvalidParams(t *testing.T) {
	for _, cfg := range []struct{ t, n int }{{0, 0}, {3, 3}, {-1, 3}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("t=%d n=%d should panic", cfg.t, cfg.n)
				}
			}()
			ShamirShareSecret(1, cfg.t, cfg.n)
		}()
	}
}

// Degree-2t reconstruction of a local share product (the basis of the
// Shamir multiplication fold).
func TestShamirLocalProductDegree2t(t *testing.T) {
	x, y := Fe(1000), Fe(2000)
	const tt, n = 2, 5
	sx := ShamirShareSecret(x, tt, n)
	sy := ShamirShareSecret(y, tt, n)
	prod := make([]ShamirShare, n)
	for i := range prod {
		prod[i] = ShamirShare{X: sx[i].X, Y: Mul(sx[i].Y, sy[i].Y)}
	}
	got, err := ShamirReconstruct(prod, 2*tt)
	if err != nil {
		t.Fatal(err)
	}
	if got != Mul(x, y) {
		t.Fatalf("product reconstruct = %d, want %d", got, Mul(x, y))
	}
}
