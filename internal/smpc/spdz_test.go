package smpc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSPDZShareOpen(t *testing.T) {
	d := NewDealer(3)
	alpha := []Fe{d.AlphaShare(0), d.AlphaShare(1), d.AlphaShare(2)}
	v := Fe(424242)
	shares := d.Share(v)
	got, err := Open(shares, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("opened %d, want %d", got, v)
	}
}

// The FT security claim: tampering with any single share must abort.
func TestSPDZMACCheckDetectsTampering(t *testing.T) {
	d := NewDealer(4)
	alpha := make([]Fe, 4)
	for i := range alpha {
		alpha[i] = d.AlphaShare(i)
	}
	v := Fe(777)
	for node := 0; node < 4; node++ {
		shares := d.Share(v)
		shares[node].Val = Add(shares[node].Val, 1) // malicious node adds 1
		if _, err := Open(shares, alpha); !errors.Is(err, ErrMACCheckFailed) {
			t.Fatalf("tampering by node %d not detected: %v", node, err)
		}
	}
	// Tampering with a MAC share must also abort.
	shares := d.Share(v)
	shares[2].MAC = Add(shares[2].MAC, 1)
	if _, err := Open(shares, alpha); !errors.Is(err, ErrMACCheckFailed) {
		t.Fatal("MAC tampering not detected")
	}
}

// Property: additive shares of random values open correctly.
func TestSPDZShareOpenProperty(t *testing.T) {
	d := NewDealer(5)
	alpha := make([]Fe, 5)
	for i := range alpha {
		alpha[i] = d.AlphaShare(i)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := Fe(r.Uint64() % P)
		got, err := Open(d.Share(v), alpha)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSPDZLinearOps(t *testing.T) {
	d := NewDealer(3)
	alpha := []Fe{d.AlphaShare(0), d.AlphaShare(1), d.AlphaShare(2)}
	x, y := Fe(100), Fe(30)
	sx, sy := d.Share(x), d.Share(y)

	sum, err := Open(AddShares(sx, sy), alpha)
	if err != nil || sum != 130 {
		t.Fatalf("add: %v %v", sum, err)
	}
	diff, err := Open(SubShares(sx, sy), alpha)
	if err != nil || diff != 70 {
		t.Fatalf("sub: %v %v", diff, err)
	}
	scaled, err := Open(ScaleShares(sx, 7), alpha)
	if err != nil || scaled != 700 {
		t.Fatalf("scale: %v %v", scaled, err)
	}
	shifted, err := Open(AddPublic(sx, 5, alpha), alpha)
	if err != nil || shifted != 105 {
		t.Fatalf("add public: %v %v", shifted, err)
	}
}

func TestSPDZBeaverMultiply(t *testing.T) {
	d := NewDealer(3)
	alpha := []Fe{d.AlphaShare(0), d.AlphaShare(1), d.AlphaShare(2)}
	x, y := Fe(12345), Fe(6789)
	z, err := Multiply(d.Share(x), d.Share(y), d.Triple(), alpha)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(z, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if got != Mul(x, y) {
		t.Fatalf("product = %d, want %d", got, Mul(x, y))
	}
	if d.TriplesIn != 1 {
		t.Fatalf("triple count = %d", d.TriplesIn)
	}
}

// Property: Beaver multiplication is correct for random inputs.
func TestSPDZBeaverProperty(t *testing.T) {
	d := NewDealer(3)
	alpha := []Fe{d.AlphaShare(0), d.AlphaShare(1), d.AlphaShare(2)}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := Fe(r.Uint64() % P)
		y := Fe(r.Uint64() % P)
		z, err := Multiply(d.Share(x), d.Share(y), d.Triple(), alpha)
		if err != nil {
			return false
		}
		got, err := Open(z, alpha)
		return err == nil && got == Mul(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSPDZMultiplyAfterTampering(t *testing.T) {
	d := NewDealer(3)
	alpha := []Fe{d.AlphaShare(0), d.AlphaShare(1), d.AlphaShare(2)}
	sx, sy := d.Share(5), d.Share(7)
	sx[1].Val = Add(sx[1].Val, 3)
	if _, err := Multiply(sx, sy, d.Triple(), alpha); !errors.Is(err, ErrMACCheckFailed) {
		t.Fatalf("tampered multiply input must abort, got %v", err)
	}
}

func TestRandomMaskPositive(t *testing.T) {
	d := NewDealer(3)
	alpha := []Fe{d.AlphaShare(0), d.AlphaShare(1), d.AlphaShare(2)}
	for i := 0; i < 50; i++ {
		m, err := Open(d.RandomMask(20), alpha)
		if err != nil {
			t.Fatal(err)
		}
		if m == 0 || uint64(m) >= 1<<20 {
			t.Fatalf("mask %d out of (0, 2^20)", m)
		}
	}
}

func TestOpenNoCheck(t *testing.T) {
	d := NewDealer(3)
	v := Fe(99)
	if got := OpenNoCheck(d.Share(v)); got != v {
		t.Fatalf("OpenNoCheck = %d", got)
	}
}

func TestShareVecShape(t *testing.T) {
	d := NewDealer(4)
	sh := d.ShareVec([]Fe{1, 2, 3})
	if len(sh) != 4 || len(sh[0]) != 3 {
		t.Fatalf("shape %dx%d", len(sh), len(sh[0]))
	}
	alpha := make([]Fe, 4)
	for i := range alpha {
		alpha[i] = d.AlphaShare(i)
	}
	for e := 0; e < 3; e++ {
		col := make([]AuthShare, 4)
		for n := 0; n < 4; n++ {
			col[n] = sh[n][e]
		}
		v, err := Open(col, alpha)
		if err != nil || v != Fe(e+1) {
			t.Fatalf("elem %d: %v %v", e, v, err)
		}
	}
}
