package smpc

import "fmt"

// Shamir (t, n) secret sharing: the secret is f(0) of a random degree-t
// polynomial; node i holds f(i). Any t+1 shares reconstruct; t or fewer
// reveal nothing. MIP offers this scheme (with t < n/2, t ≥ n/3) as the
// fast honest-but-curious option.

// ShamirShare is one node's share: the evaluation point X (the 1-based
// node index) and the polynomial value Y.
type ShamirShare struct {
	X uint64
	Y Fe
}

// ShamirShareSecret splits secret into n shares with threshold t
// (reconstruction needs t+1 shares). It panics if t >= n or n == 0.
func ShamirShareSecret(secret Fe, t, n int) []ShamirShare {
	if n <= 0 || t < 0 || t >= n {
		panic(fmt.Sprintf("smpc: invalid Shamir parameters t=%d n=%d", t, n))
	}
	// Random polynomial f(x) = secret + c1·x + ... + ct·x^t.
	coeffs := make([]Fe, t+1)
	coeffs[0] = secret
	for i := 1; i <= t; i++ {
		coeffs[i] = RandFe()
	}
	shares := make([]ShamirShare, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = ShamirShare{X: uint64(i), Y: evalPoly(coeffs, Fe(uint64(i)))}
	}
	return shares
}

// evalPoly evaluates the polynomial at x by Horner's rule.
func evalPoly(coeffs []Fe, x Fe) Fe {
	acc := Fe(0)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = Add(Mul(acc, x), coeffs[i])
	}
	return acc
}

// ShamirReconstruct recovers the secret from at least t+1 shares via
// Lagrange interpolation at zero. It returns an error when too few shares
// are supplied or evaluation points repeat.
func ShamirReconstruct(shares []ShamirShare, t int) (Fe, error) {
	if len(shares) < t+1 {
		return 0, fmt.Errorf("smpc: need %d shares to reconstruct, have %d", t+1, len(shares))
	}
	pts := shares[:t+1]
	seen := map[uint64]bool{}
	for _, s := range pts {
		if seen[s.X] {
			return 0, fmt.Errorf("smpc: duplicate share for x=%d", s.X)
		}
		seen[s.X] = true
	}
	var secret Fe
	for i, si := range pts {
		num, den := Fe(1), Fe(1)
		xi := Fe(si.X)
		for j, sj := range pts {
			if i == j {
				continue
			}
			xj := Fe(sj.X)
			num = Mul(num, Neg(xj))     // (0 − xj)
			den = Mul(den, Sub(xi, xj)) // (xi − xj)
		}
		lagrange := Mul(num, Inv(den))
		secret = Add(secret, Mul(si.Y, lagrange))
	}
	return secret, nil
}

// ShamirAddShares adds two share vectors element-wise (shares of the sum);
// the linearity that makes secure aggregation cheap.
func ShamirAddShares(a, b []ShamirShare) ([]ShamirShare, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("smpc: share count mismatch %d vs %d", len(a), len(b))
	}
	out := make([]ShamirShare, len(a))
	for i := range a {
		if a[i].X != b[i].X {
			return nil, fmt.Errorf("smpc: share points differ at %d: %d vs %d", i, a[i].X, b[i].X)
		}
		out[i] = ShamirShare{X: a[i].X, Y: Add(a[i].Y, b[i].Y)}
	}
	return out, nil
}
