// Package smpc implements MIP's secure multi-party computation engine: the
// component that aggregates Worker results so that "only aggregated,
// encrypted data leaves the hospital".
//
// Two schemes are provided, matching the paper:
//
//   - FT (full threshold): additive secret sharing with SPDZ-style
//     information-theoretic MACs. Secure with abort against an
//     active-malicious majority — if even a single node is honest, tampering
//     is detected and the computation aborts. The multiplication
//     preprocessing (Beaver triples) is produced by a dealer, standing in
//     for SPDZ's offline phase (the paper's engine, SCALE-MAMBA running
//     SPDZ, likewise splits work into offline and online phases).
//
//   - Shamir: (t, n) polynomial secret sharing with t < n/2, secure against
//     honest-but-curious adversaries. Much faster, as the paper notes; the
//     data owner chooses the scheme as a security/efficiency trade-off.
//
// All arithmetic is over the Mersenne prime field GF(2^61 − 1); reals are
// carried as fixed-point field elements.
package smpc

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync"
)

// P is the field modulus, the Mersenne prime 2^61 − 1.
const P uint64 = (1 << 61) - 1

// Fe is a field element in [0, P).
type Fe uint64

// reduce maps a value < 2·P into [0, P).
func reduce(x uint64) Fe {
	if x >= P {
		x -= P
	}
	return Fe(x)
}

// Add returns a + b mod P.
func Add(a, b Fe) Fe { return reduce(uint64(a) + uint64(b)) }

// Sub returns a − b mod P.
func Sub(a, b Fe) Fe { return reduce(uint64(a) + P - uint64(b)) }

// Neg returns −a mod P.
func Neg(a Fe) Fe {
	if a == 0 {
		return 0
	}
	return Fe(P - uint64(a))
}

// Mul returns a·b mod P using the Mersenne reduction: for p = 2^61 − 1,
// (hi·2^64 + lo) ≡ hi·8 + lo (mod p) after splitting lo at bit 61.
func Mul(a, b Fe) Fe {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// x = hi·2^64 + lo = (hi·2^3)·2^61 + lo.
	// 2^61 ≡ 1 (mod P), so x ≡ hi·8 + (lo >> 61 part folded) + low bits.
	low := lo & P
	mid := (lo >> 61) | (hi << 3)
	s := low + (mid & P) + (mid >> 61)
	for s >= P {
		s -= P
	}
	return Fe(s)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Fe, e uint64) Fe {
	result := Fe(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a (panics on zero).
func Inv(a Fe) Fe {
	if a == 0 {
		panic("smpc: inverse of zero")
	}
	return Pow(a, uint64(P)-2) // Fermat
}

// randPool buffers crypto/rand reads: secure imports of large vectors draw
// millions of field elements and per-call getrandom syscalls would dominate.
var randPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(rand.Reader, 4096) },
}

// RandFe draws a uniform field element from crypto/rand.
func RandFe() Fe {
	r := randPool.Get().(*bufio.Reader)
	defer randPool.Put(r)
	var buf [8]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			panic(fmt.Sprintf("smpc: crypto/rand failed: %v", err))
		}
		// Take 61 bits; rejection-sample the single invalid value P.
		v := binary.LittleEndian.Uint64(buf[:]) & P
		if v != uint64(P) {
			return Fe(v)
		}
	}
}

// RandVec draws a vector of uniform field elements.
func RandVec(n int) []Fe {
	out := make([]Fe, n)
	for i := range out {
		out[i] = RandFe()
	}
	return out
}
