// Secure aggregation walkthrough: the same mean computed over three
// aggregation paths —
//
//  1. plain transfers (the remote/merge-table path for non-sensitive data),
//  2. Shamir secret sharing (honest-but-curious, fast),
//  3. SPDZ-style full-threshold sharing (active-malicious w/ abort, slow),
//
// and then with Gaussian differential-privacy noise injected *inside* the
// SMPC protocol (the paper's secure-aggregation training mode), showing
// the privacy/utility trade-off across ε.
//
// Run with: go run ./examples/securemean
package main

import (
	"fmt"
	"log"
	"math"

	"mip"
)

func buildPlatform(security mip.SecurityMode, noise mip.NoiseKind, scale float64) *mip.Platform {
	var workers []mip.WorkerConfig
	for i, id := range []string{"site-a", "site-b", "site-c", "site-d"} {
		cohort, err := mip.GenerateCohort(mip.SynthSpec{
			Dataset: "edsd", Rows: 250, Seed: int64(10 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, mip.WorkerConfig{ID: id, Data: cohort})
	}
	p, err := mip.New(mip.Config{
		Workers:    workers,
		Security:   security,
		NoiseKind:  noise,
		NoiseScale: scale,
		Seed:       99,
	})
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func meanOf(p *mip.Platform) (float64, int, int64) {
	res, err := p.RunExperiment("ttest_onesample", mip.Request{
		Datasets: []string{"edsd"},
		Y:        []string{"ab42"},
	})
	if err != nil {
		log.Fatal(err)
	}
	msgs, bytes := p.SMPCStats()
	return res["mean"].(float64), msgs, bytes
}

func main() {
	fmt.Println("federated mean of Aβ42 over 4 sites × 250 patients")
	fmt.Printf("\n%-28s %12s %10s %12s\n", "aggregation path", "mean", "messages", "bytes")

	plain := buildPlatform(mip.SecurityOff, mip.NoiseNone, 0)
	m0, _, _ := meanOf(plain)
	fmt.Printf("%-28s %12.4f %10d %12d\n", "plain transfers", m0, 0, 0)
	plain.Close()

	shamir := buildPlatform(mip.SecuritySMPCShamir, mip.NoiseNone, 0)
	m1, msg1, b1 := meanOf(shamir)
	fmt.Printf("%-28s %12.4f %10d %12d\n", "SMPC Shamir (t=1, n=3)", m1, msg1, b1)
	shamir.Close()

	ft := buildPlatform(mip.SecuritySMPCFullThreshold, mip.NoiseNone, 0)
	m2, msg2, b2 := meanOf(ft)
	fmt.Printf("%-28s %12.4f %10d %12d\n", "SMPC full-threshold (SPDZ)", m2, msg2, b2)
	ft.Close()

	fmt.Printf("\nmax deviation across paths: %.2g (fixed-point resolution bound)\n",
		math.Max(math.Abs(m1-m0), math.Abs(m2-m0)))

	// DP inside the protocol: sweep the Gaussian noise scale.
	fmt.Printf("\n%-14s %12s %12s\n", "noise σ", "released", "abs error")
	for _, sigma := range []float64{0, 1, 5, 25, 100} {
		kind := mip.NoiseGaussian
		if sigma == 0 {
			kind = mip.NoiseNone
		}
		p := buildPlatform(mip.SecuritySMPCShamir, kind, sigma)
		m, _, _ := meanOf(p)
		fmt.Printf("%-14.1f %12.4f %12.4f\n", sigma, m, math.Abs(m-m0))
		p.Close()
	}
	fmt.Println("\nlarger σ = stronger privacy for each site's sum, at the cost of accuracy —")
	fmt.Println("the trade-off the data owners tune per the paper's Training section.")
}
