// Quickstart: build a three-hospital federation over synthetic dementia
// cohorts and run the paper's Figure-2 example — a federated linear
// regression — plus the Figure-3 descriptive-statistics table.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"mip"
)

func main() {
	// Each hospital holds its own shard; data never leaves the worker.
	var workers []mip.WorkerConfig
	for i, id := range []string{"hospital-a", "hospital-b", "hospital-c"} {
		cohort, err := mip.GenerateCohort(mip.SynthSpec{
			Dataset:     "edsd",
			Rows:        300,
			Seed:        int64(i + 1),
			MissingRate: 0.05,
			Shift:       float64(i) * 0.4, // site heterogeneity
		})
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, mip.WorkerConfig{ID: id, Data: cohort})
	}

	platform, err := mip.New(mip.Config{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	fmt.Println("== dataset availability (tracked by the master) ==")
	avail := platform.Datasets()
	var names []string
	for ds := range avail {
		names = append(names, ds)
	}
	sort.Strings(names)
	for _, ds := range names {
		fmt.Printf("  %-8s -> %v\n", ds, avail[ds])
	}

	// Descriptive statistics (the dashboard table of Figure 3).
	res, err := platform.RunExperiment("descriptive_stats", mip.Request{
		Datasets: []string{"edsd"},
		Y:        []string{"p_tau", "lefthippocampus", "minimentalstate"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== descriptive statistics (all workers combined) ==")
	rows := res["datasets"].(map[string][]mip.VariableSummary)["all"]
	fmt.Printf("  %-18s %10s %6s %10s %10s %10s %10s %10s\n",
		"variable", "n", "NA", "mean", "SE", "Q1", "median", "Q3")
	for _, r := range rows {
		fmt.Printf("  %-18s %10.0f %6.0f %10.3f %10.4f %10.3f %10.3f %10.3f\n",
			r.Variable, r.Datapoints, r.NA, r.Mean, r.SE, r.Q1, r.Q2, r.Q3)
	}

	// Federated linear regression (the paper's Figure 2 example):
	// MMSE explained by hippocampal volume and age.
	res, err = platform.RunExperiment("linear_regression", mip.Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus", "subjectageyears"},
	})
	if err != nil {
		log.Fatal(err)
	}
	model := res["model"].(*mip.LinRegModel)
	fmt.Println("\n== linear regression: minimentalstate ~ lefthippocampus + subjectageyears ==")
	fmt.Printf("  n=%d  R²=%.4f  adj.R²=%.4f  F=%.2f (p=%.2g)\n",
		model.N, model.RSquared, model.AdjRSquared, model.FStat, model.FPValue)
	fmt.Printf("  %-22s %12s %10s %8s %10s\n", "coefficient", "estimate", "std.err", "t", "p")
	for _, c := range model.Coefficients {
		fmt.Printf("  %-22s %12.4f %10.4f %8.2f %10.2g\n",
			c.Name, c.Estimate, c.StdErr, c.TValue, c.PValue)
	}
}
