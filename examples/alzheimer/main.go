// The paper's use case: "Federated analyses in Alzheimer's disease".
//
// Four sites — the memory clinics of Brescia (1960 patients), Lausanne
// (1032) and Lille (1103) plus the ADNI reference dataset (1066) — are
// federated; the data stays at each site while the analysis runs on the
// overall caseload of 5161 patients. The study uses the two MIP algorithms
// the paper names: k-means (clusters on Aβ42, pTau and left entorhinal
// volume — objective (b)) and linear regression (brain volumes'
// contribution to diagnosis/cognition — objective (a)), plus the influence
// of the two non-AD etiologies PSY and VA (objective (c)), all over
// Shamir secure aggregation.
//
// Run with: go run ./examples/alzheimer
package main

import (
	"fmt"
	"log"

	"mip"
)

func main() {
	cohorts, err := mip.GenerateUseCase(2024)
	if err != nil {
		log.Fatal(err)
	}
	var workers []mip.WorkerConfig
	var sites []string
	total := 0
	for _, site := range []string{"brescia", "lausanne", "lille", "adni"} {
		workers = append(workers, mip.WorkerConfig{ID: site, Data: cohorts[site]})
		sites = append(sites, site)
		total += cohorts[site].NumRows()
	}
	// The crown-jewel configuration: aggregates travel as secret shares.
	platform, err := mip.New(mip.Config{
		Workers:  workers,
		Security: mip.SecuritySMPCShamir,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()
	fmt.Printf("federated caseload: %d patients across %v (secure aggregation: Shamir)\n\n", total, sites)

	// Objective (b): clusters on Aβ42, pTau and left entorhinal volume.
	res, err := platform.RunExperiment("kmeans", mip.Request{
		Datasets: sites,
		Y:        []string{"ab42", "p_tau", "leftententorhinalarea"},
		Parameters: map[string]any{
			"k": 3, "iterations_max_number": 100, "e": 0.001,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	km := res["kmeans"].(mip.KMeansResult)
	fmt.Println("== k-means on {Aβ42, pTau, left entorhinal} (k=3) ==")
	fmt.Printf("  converged=%v after %d iterations, within-SS=%.0f\n", km.Converged, km.Iterations, km.WSS)
	fmt.Printf("  %-8s %10s %10s %12s %10s\n", "cluster", "size", "Aβ42", "pTau", "entorhinal")
	for c, centroid := range km.Centroids {
		fmt.Printf("  %-8d %10.0f %10.1f %12.1f %10.3f\n",
			c, km.Sizes[c], centroid[0], centroid[1], centroid[2])
	}

	// Objective (a): brain volumes' contribution to cognition/diagnosis.
	res, err = platform.RunExperiment("linear_regression", mip.Request{
		Datasets: sites,
		Y:        []string{"minimentalstate"},
		X: []string{"lefthippocampus", "leftententorhinalarea",
			"leftlateralventricle", "subjectageyears"},
	})
	if err != nil {
		log.Fatal(err)
	}
	model := res["model"].(*mip.LinRegModel)
	fmt.Println("\n== brain volume repartition: MMSE ~ volumes + age ==")
	fmt.Printf("  n=%d  R²=%.4f\n", model.N, model.RSquared)
	for _, c := range model.Coefficients {
		fmt.Printf("  %-24s %10.4f  (p=%.2g)\n", c.Name, c.Estimate, c.PValue)
	}

	// Objective (b) continued: diagnosis specificity from the two key AD
	// biomarkers — logistic regression AD vs CN on Aβ42 + pTau.
	res, err = platform.RunExperiment("logistic_regression", mip.Request{
		Datasets: sites,
		Y:        []string{"alzheimerbroadcategory"},
		X:        []string{"ab42", "p_tau", "leftententorhinalarea"},
		Filter:   "alzheimerbroadcategory IN ('AD', 'CN')",
		Parameters: map[string]any{
			"pos_level": "AD",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	lr := res["model"].(*mip.LogRegModel)
	fmt.Println("\n== diagnosis specificity: AD vs CN from Aβ42, pTau, entorhinal ==")
	fmt.Printf("  n=%d (AD=%d)  converged=%v  AIC=%.1f\n", lr.N, lr.NPositive, lr.Converged, lr.AIC)
	for _, c := range lr.Coefficients {
		fmt.Printf("  %-24s OR=%8.4f [%7.4f, %7.4f]  (p=%.2g)\n",
			c.Name, c.OddsRatio, c.ORLow, c.ORHigh, c.PValue)
	}

	// Objective (c): influence of the two non-AD etiologies (PSY, VA) on
	// hippocampal volume, two-way ANOVA against diagnosis.
	res, err = platform.RunExperiment("anova_twoway", mip.Request{
		Datasets: sites,
		Y:        []string{"lefthippocampus"},
		X:        []string{"alzheimerbroadcategory", "psy"},
		Parameters: map[string]any{
			"levels": map[string]any{
				"alzheimerbroadcategory": []any{"CN", "MCI", "AD"},
				"psy":                    []any{"no", "yes"},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== non-AD etiology: hippocampus ~ diagnosis × depression (PSY) ==")
	for _, row := range res["table"].([]mip.ANOVATable) {
		fmt.Printf("  %-38s df=%4.0f  SS=%9.3f  F=%8.3f  p=%.3g\n",
			row.Effect, row.DF, row.SumSq, row.F, row.PValue)
	}

	msgs, bytes := platform.SMPCStats()
	fmt.Printf("\nSMPC traffic for the whole study: %d messages, %.1f MiB — only shares and aggregates left the hospitals.\n",
		msgs, float64(bytes)/(1<<20))
}
