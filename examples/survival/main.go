// Federated survival analysis: Kaplan-Meier curves for an epilepsy-like
// time-to-relapse study across two sites, with the distinct event times
// collected through the SMPC disjoint-union primitive and a log-rank test
// comparing treatment against control.
//
// Run with: go run ./examples/survival
package main

import (
	"fmt"
	"log"
	"strings"

	"mip"
)

func main() {
	var workers []mip.WorkerConfig
	for i, id := range []string{"clinic-a", "clinic-b"} {
		cohort, err := mip.GenerateSurvival(mip.SurvivalSpec{
			Dataset: id, Rows: 500, Seed: int64(30 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, mip.WorkerConfig{ID: id, Data: cohort})
	}
	platform, err := mip.New(mip.Config{Workers: workers, Security: mip.SecuritySMPCShamir})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	res, err := platform.RunExperiment("kaplan_meier", mip.Request{
		Y:          []string{"time", "event"},
		X:          []string{"grp"},
		Parameters: map[string]any{"groups": []any{"control", "treated"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	curves := res["curves"].([]mip.KMCurve)
	fmt.Println("== Kaplan-Meier: time to relapse, control vs treated (2 clinics, secure union of event times) ==")
	for _, c := range curves {
		fmt.Printf("\ngroup %s: n=%.0f, events=%.0f, median=%.1f months\n", c.Group, c.N, c.Events, c.Median)
		fmt.Printf("  %8s %8s %8s %10s %18s\n", "time", "at risk", "events", "S(t)", "95% CI")
		step := len(c.Points) / 8
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(c.Points); i += step {
			p := c.Points[i]
			fmt.Printf("  %8.1f %8.0f %8.0f %10.3f [%6.3f, %6.3f]  %s\n",
				p.Time, p.AtRisk, p.Events, p.Survival, p.CILow, p.CIHigh, bar(p.Survival))
		}
	}
	fmt.Printf("\nlog-rank test: χ² = %.2f, p = %.3g\n",
		res["logrank_chi2"].(float64), res["logrank_p"].(float64))
	if res["logrank_p"].(float64) < 0.05 {
		fmt.Println("→ the treated group relapses significantly later.")
	}
}

func bar(s float64) string {
	n := int(s * 40)
	return strings.Repeat("█", n)
}
