GO ?= go

.PHONY: build test race vet fmt check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt (CI-friendly).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: vet fmt race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
