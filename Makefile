GO ?= go

.PHONY: build test race vet fmt check auditsmoke spillsmoke cachesmoke bench benchcompare benchfull

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt (CI-friendly).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# auditsmoke exercises the tamper-evident audit chain end to end: a JSONL
# sink round-trip (the mipd -audit-log format) plus mutation detection.
auditsmoke:
	$(GO) test -count=1 -run 'TestAuditJSONLSinkRoundTrip|TestVerifyChainDetectsMutatedMiddleEntry' ./internal/obs/

# spillsmoke runs the tiny-budget spill equivalence and cleanup tests: a
# few-KB budget forces every grouped aggregate and hash join to disk, and
# the results must stay bit-identical with no run files left behind.
spillsmoke:
	$(GO) test -count=1 -run 'TestSpillSerialParallelEquivalence|TestSpillJoinEquivalence|TestSpillCleanupOnError|TestSpillCleanupOnCancel' ./internal/engine/

# cachesmoke covers both cache tiers' correctness backbone: plan-cached
# execution stays bit-identical to uncached, schema changes invalidate
# plans, dataset-version bumps and worker restarts invalidate federated
# results, and a concurrent miss herd collapses to one execution.
cachesmoke:
	$(GO) test -count=1 -race -run 'TestPlanCacheResultsUnchanged|TestPlanCacheSchemaChangeInvalidates|TestResultCacheInvalidationOnAppend|TestResultCacheWorkerRestartInvalidates|TestResultCacheSingleflight|TestParallelSortEquivalence' ./internal/engine/ ./internal/federation/

check: vet fmt race auditsmoke spillsmoke cachesmoke

# bench runs the engine perf suite and writes BENCH_engine.json (the CI
# bench job uploads it as an artifact). Use benchfull for the testing.B
# companions across every package.
bench:
	$(GO) run ./cmd/mipbench -bench-out BENCH_engine.json

# benchcompare re-runs the suite and diffs ns/op and allocs/op against the
# checked-in BENCH_engine.json, failing past the regression threshold.
benchcompare:
	$(GO) run ./cmd/mipbench -compare BENCH_engine.json

benchfull:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
