package mip

import "mip/internal/algorithms"

// Typed result payloads: algorithms return Result maps whose values carry
// these structures (directly for in-process runs, JSON-shaped through the
// REST API).
type (
	// VariableSummary is one row of the descriptive-statistics table.
	VariableSummary = algorithms.VariableSummary
	// LinRegModel is the linear-regression summary.
	LinRegModel = algorithms.LinRegModel
	// Coefficient is one linear-model coefficient row.
	Coefficient = algorithms.Coefficient
	// LogRegModel is the logistic-regression summary.
	LogRegModel = algorithms.LogRegModel
	// LogRegCoef is one logistic coefficient row.
	LogRegCoef = algorithms.LogRegCoef
	// KMeansResult is the clustering output.
	KMeansResult = algorithms.KMeansResult
	// TTestResult is the shared t-test output.
	TTestResult = algorithms.TTestResult
	// Correlation is one Pearson-correlation pair.
	Correlation = algorithms.Correlation
	// ANOVATable is one ANOVA effect row.
	ANOVATable = algorithms.ANOVATable
	// PCAResult is the principal-components output.
	PCAResult = algorithms.PCAResult
	// NBModel is the naive-Bayes model.
	NBModel = algorithms.NBModel
	// DecisionTree is the CART/ID3 tree model.
	DecisionTree = algorithms.Tree
	// KMCurve is one Kaplan-Meier survival curve.
	KMCurve = algorithms.KMCurve
	// KMPoint is one survival-curve step.
	KMPoint = algorithms.KMPoint
	// CalBeltResult is the calibration-belt output.
	CalBeltResult = algorithms.CalBeltResult
	// BeltPoint is one calibration-belt grid point.
	BeltPoint = algorithms.BeltPoint
	// FoldScore is one regression-CV fold result.
	FoldScore = algorithms.FoldScore
	// ClassScore is one classification-CV fold result.
	ClassScore = algorithms.ClassScore
)
